// Package transport defines the message protocol spoken between
// parameter-server workers and the server, and two interchangeable
// transports for it: an in-process transport built on channels (used by
// tests, examples and the single-process trainer) and a TCP transport (used
// by cmd/psserver and cmd/psworker).
//
// On TCP the default encoding is a versioned, length-delimited binary frame
// protocol (wire.go; byte-level specification in docs/PROTOCOL.md) whose
// tensor payloads travel as raw little-endian float32 slabs: encoding is a
// header write plus copy, and decoding aliases the read buffer so a weights
// chunk costs one allocation regardless of size. The legacy gob encoding
// remains available behind transport.WireGob (the -wire flag on cmd/psserver
// and cmd/psworker) for A/B comparison; both ends of a connection must speak
// the same format, and a mismatch fails fast with an explicit error in the
// peer's own format rather than hanging either side.
package transport

import (
	"fmt"

	"dssp/internal/compress"
	"dssp/internal/tensor"
)

// MessageType identifies the purpose of a Message.
type MessageType int

// Protocol message types. The worker-side protocol of Algorithm 1 is:
// Register, Pull (initial weights), then repeatedly Push → wait for OK →
// Pull, and finally Done.
const (
	// MsgRegister announces a worker to the server.
	MsgRegister MessageType = iota + 1
	// MsgRegistered acknowledges registration.
	MsgRegistered
	// MsgPush carries a worker's gradients to the server.
	MsgPush
	// MsgOK releases a worker to start its next iteration.
	MsgOK
	// MsgPull requests the current global weights.
	MsgPull
	// MsgWeights carries the global weights and their version.
	MsgWeights
	// MsgDone tells the server a worker has finished training.
	MsgDone
	// MsgShutdown tells a worker (or the server) to stop.
	MsgShutdown
	// MsgError carries an error description.
	MsgError
	// MsgHeartbeat is a one-way liveness proof from a worker; the server
	// refreshes the worker's session lease and sends no reply.
	MsgHeartbeat
	// MsgRejoin re-registers a previously crashed or disconnected worker.
	// Version carries the last store version the worker saw, letting the
	// server account how far behind the returnee is.
	MsgRejoin
	// MsgLeave deregisters a worker gracefully: the server removes it from
	// synchronization accounting without treating the departure as a crash.
	MsgLeave
	// MsgClusterMap requests (worker→coordinator, no fields) or carries
	// (coordinator→worker) the server-group cluster map: which data server
	// owns which contiguous range of store shards. Protocol v3.
	MsgClusterMap
	// MsgServerAnnounce registers a data server (or, with Replica set, a
	// standby backup) with the coordinator: Servers[0] describes the
	// announcer's advertised address and shard range. The coordinator keeps
	// the connection open; its death is the announcer's signal that the
	// coordinator is gone. Protocol v3.
	MsgServerAnnounce
	// MsgPromote tells the coordinator a backup is taking over a dead
	// primary's shard range: Servers[0] is the backup's entry, which replaces
	// the map entry covering the same shard range. Protocol v3.
	MsgPromote
)

// String returns the message type name.
func (t MessageType) String() string {
	switch t {
	case MsgRegister:
		return "Register"
	case MsgRegistered:
		return "Registered"
	case MsgPush:
		return "Push"
	case MsgOK:
		return "OK"
	case MsgPull:
		return "Pull"
	case MsgWeights:
		return "Weights"
	case MsgDone:
		return "Done"
	case MsgShutdown:
		return "Shutdown"
	case MsgError:
		return "Error"
	case MsgHeartbeat:
		return "Heartbeat"
	case MsgRejoin:
		return "Rejoin"
	case MsgLeave:
		return "Leave"
	case MsgClusterMap:
		return "ClusterMap"
	case MsgServerAnnounce:
		return "ServerAnnounce"
	case MsgPromote:
		return "Promote"
	default:
		return fmt.Sprintf("MessageType(%d)", int(t))
	}
}

// ServerEntry describes one data server in a cluster map: the address
// workers dial and the contiguous ranges of global store shards and global
// tensor indices it owns. Shard and tensor ranges are half-open [Lo, Hi).
type ServerEntry struct {
	// Addr is the address workers (and the backup's replicator) dial.
	Addr string
	// ShardLo and ShardHi bound the global store shards this server owns.
	ShardLo, ShardHi int
	// TensorLo and TensorHi bound the global tensor indices those shards
	// cover, so clients can split a full gradient list per owner without
	// recomputing the partition.
	TensorLo, TensorHi int
}

// WireTensor is the serializable form of a tensor.
type WireTensor struct {
	Shape []int
	Data  []float32
}

// PushEntry is the per-child metadata of one logical push folded into an
// aggregated relay push: which worker pushed, the store version its gradients
// were computed from, and its local iteration number. The relay sums the
// gradients coordinate-wise but forwards every child's entry, so the root's
// policy layer still observes each logical push for staleness accounting.
type PushEntry struct {
	// Worker is the pushing worker's ID.
	Worker int
	// Version is the store version the worker's gradients were computed
	// against (the flat push's Version field).
	Version int64
	// Iteration is the worker's local iteration number.
	Iteration int
}

// Message is the envelope exchanged between a worker and the server.
type Message struct {
	// Type identifies the message purpose.
	Type MessageType
	// Worker is the sender's worker ID (0-based) on worker→server messages.
	Worker int
	// Iteration is the worker's local iteration number on Push messages.
	Iteration int
	// Version is the parameter-store version: on Push it is the version the
	// worker's gradients were computed from (for staleness accounting), on
	// Weights it is the version of the delivered weights, on Rejoin the last
	// version the returning worker saw, and on Registered the store's
	// current version (so a restarted worker knows where training resumed).
	Version int64
	// Tensors carries gradients (Push) or weights (Weights).
	Tensors []WireTensor
	// Shard and Shards describe chunked Weights replies: a pull response is
	// streamed as Shards messages, each carrying one parameter-store shard as
	// soon as that shard's lock is released. Shard is this chunk's index;
	// Shards <= 1 means the reply is a single unchunked message.
	Shard  int
	Shards int
	// Base is the global index of the first tensor in this chunk and Total
	// the model's total tensor count, letting the receiver reassemble chunks
	// into the full parameter list.
	Base  int
	Total int
	// Codec, CodecTopK and CodecPull negotiate the gradient codec
	// (internal/compress): on MsgRegister they carry the worker's requested
	// configuration (compress.Auto adopts the server's), on MsgRegistered
	// the server's actual configuration, which both ends then speak for the
	// rest of the connection. On MsgPush and MsgWeights, Codec names the
	// codec that produced Packed; empty means Tensors is used uncompressed.
	Codec     string
	CodecTopK float64
	CodecPull bool
	// Packed carries codec-compressed tensors — gradients on MsgPush, weight
	// chunks on MsgWeights — when a lossy codec is negotiated. Exactly one of
	// Tensors and Packed is populated on those messages.
	Packed []compress.Packed
	// StoreShards reports the server's parameter-store shard count on
	// MsgRegistered, letting workers sanity-check cluster configuration.
	StoreShards int
	// Error carries a description on MsgError messages.
	Error string
	// PullVersions, on MsgPull, carries the worker's cached per-shard
	// publication versions for version-gated delta pulls: entry i is the
	// ShardVersion of the last full chunk the worker decoded for store shard
	// i. The server answers shards still at that version with an Unchanged
	// chunk instead of re-sending the payload. Only sent after both ends
	// negotiated DeltaPull. Binary wire tag 0x0F (protocol v2).
	PullVersions []int64
	// ShardVersion, on MsgWeights, is the shard-local publication version of
	// this chunk's payload — the key the worker echoes back in PullVersions
	// on its next pull. It is distinct from Version, the store-wide aggregate
	// used for staleness accounting. Binary wire tag 0x10 (protocol v2).
	ShardVersion int64
	// Unchanged marks a MsgWeights chunk carrying no payload: the shard is
	// still at the version the worker sent in PullVersions, so the worker
	// reuses its cached tensors. Binary wire tag 0x11 (protocol v2).
	Unchanged bool
	// DeltaPull requests (on MsgRegister/MsgRejoin) or grants (on
	// MsgRegistered) version-gated delta pulls. Binary wire tag 0x12
	// (protocol v2); a v1 peer can neither request nor be granted it, which
	// is what keeps v1 interop intact. Gob peers that predate the field
	// ignore it, which downgrades to full pulls.
	DeltaPull bool
	// Servers carries cluster-map entries: the full map on a MsgClusterMap
	// reply, the announcer's single entry on MsgServerAnnounce and
	// MsgPromote. Binary wire tag 0x13 (protocol v3).
	Servers []ServerEntry
	// MapVersion is the coordinator's monotonically increasing cluster-map
	// version, bumped on every announce and promotion; workers refetch the
	// map until it changes when a data server stops answering. Binary wire
	// tag 0x14 (protocol v3).
	MapVersion int64
	// Replica marks a MsgRegister as a server-to-server replica session
	// (pull-only, outside worker-slot accounting) and a MsgServerAnnounce as
	// a standby backup rather than a serving primary. Binary wire tag 0x15
	// (protocol v3).
	Replica bool
	// Cluster marks a MsgRegister as coming from a cluster-mode worker that
	// pushes metadata-only tickets to a coordinator; a coordinator rejects
	// registrations without it (a plain worker would otherwise train against
	// the coordinator's placeholder store). Binary wire tag 0x16 (protocol
	// v3).
	Cluster bool
	// Relay marks a MsgRegister as an aggregation-relay trunk session — a
	// relay process that multiplexes the pushes, pulls and control messages
	// of up to fanout children over one upstream connection — and a
	// MsgClusterMap request/reply as concerning the aggregation-tree layout
	// rather than the server-group shard map. On a trunk registration,
	// Servers[0] optionally advertises the relay's child-facing address and
	// its fanout (as ShardHi), which the root folds into the tree layout it
	// serves to -tree workers. Binary wire tag 0x17 (protocol v4).
	Relay bool
	// PushEntries, on a trunk MsgPush, carries the per-child metadata of the
	// logical pushes summed into this aggregated gradient: one entry per
	// child, in relay arrival order. The payload (Tensors or Packed) is the
	// coordinate-wise sum of all listed children's gradients. Binary wire tag
	// 0x18 (protocol v4).
	PushEntries []PushEntry

	// ownedPayload marks a message whose Tensors data and Packed payloads
	// are owned by the message alone — set by the TCP transports, whose
	// decoders allocate (or alias a private read buffer) per message. The
	// in-process channel transport passes messages by reference, where
	// tensor data may still alias the sender's storage (e.g. the store's
	// copy-on-write snapshots), so it leaves the flag unset and receivers
	// must copy before mutating.
	ownedPayload bool
}

// PayloadOwned reports whether the message exclusively owns its tensor data
// and packed payloads. When true, FromWireOwned may wrap them without
// copying; when false, use FromWire.
func (m *Message) PayloadOwned() bool { return m.ownedPayload }

// copyPayloads deep-copies the payload sections that may alias a shared
// decode buffer, detaching the message from it.
func (m *Message) copyPayloads() {
	for i, t := range m.Tensors {
		data := make([]float32, len(t.Data))
		copy(data, t.Data)
		m.Tensors[i].Data = data
	}
	for i, p := range m.Packed {
		payload := make([]byte, len(p.Payload))
		copy(payload, p.Payload)
		m.Packed[i].Payload = payload
	}
}

// ToWire converts tensors into their serializable form. Data slices are
// copied so that the caller may keep mutating the originals.
func ToWire(ts []*tensor.Tensor) []WireTensor {
	out := make([]WireTensor, len(ts))
	for i, t := range ts {
		data := make([]float32, t.Size())
		copy(data, t.Data())
		out[i] = WireTensor{Shape: t.Shape(), Data: data}
	}
	return out
}

// ToWireOwned converts tensors into their serializable form without copying
// the data: the wire tensors alias the inputs' storage. The caller must
// guarantee the tensors are never mutated after the call — by anyone. Its
// production use is the parameter server wrapping the store's copy-on-write
// shard views, which are immutable from publication; receivers are isolated
// because FromWire copies on decode.
func ToWireOwned(ts []*tensor.Tensor) []WireTensor {
	out := make([]WireTensor, len(ts))
	for i, t := range ts {
		out[i] = WireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	return out
}

// ToWireInto is ToWire reusing dst's WireTensor headers and data buffers
// when shapes allow, for callers that send the same parameter layout over
// and over (the client's dense push path). The returned slice may alias dst.
// The caller must not reuse dst until the message holding it has been fully
// processed by the receiver — guaranteed for the lock-step push protocol,
// where the OK release only arrives after the push was decoded and applied.
func ToWireInto(dst []WireTensor, ts []*tensor.Tensor) []WireTensor {
	if cap(dst) < len(ts) {
		dst = make([]WireTensor, len(ts))
	}
	dst = dst[:len(ts)]
	for i, t := range ts {
		data := dst[i].Data
		if cap(data) < t.Size() {
			data = make([]float32, t.Size())
		}
		data = data[:t.Size()]
		copy(data, t.Data())
		shape := dst[i].Shape
		if !t.ShapeEquals(shape) {
			shape = t.Shape()
		}
		dst[i] = WireTensor{Shape: shape, Data: data}
	}
	return dst
}

// FromWire converts serialized tensors back into tensor values, copying the
// data so the results are isolated from the wire message.
func FromWire(ws []WireTensor) ([]*tensor.Tensor, error) {
	return fromWire(ws, false)
}

// FromWireOwned converts serialized tensors into tensor values that alias
// the wire data without copying. It is only valid on messages whose
// PayloadOwned reports true, and transfers ownership: the message must not
// be reused after the call.
func FromWireOwned(ws []WireTensor) ([]*tensor.Tensor, error) {
	return fromWire(ws, true)
}

// fromWire implements FromWire and FromWireOwned.
func fromWire(ws []WireTensor, owned bool) ([]*tensor.Tensor, error) {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		n := 1
		for _, d := range w.Shape {
			if d <= 0 {
				return nil, fmt.Errorf("transport: tensor %d has non-positive dimension %d", i, d)
			}
			n *= d
		}
		if n != len(w.Data) {
			return nil, fmt.Errorf("transport: tensor %d has %d values for shape %v", i, len(w.Data), w.Shape)
		}
		if owned {
			out[i] = tensor.FromSliceOwned(w.Data, w.Shape...)
		} else {
			out[i] = tensor.FromSlice(w.Data, w.Shape...)
		}
	}
	return out, nil
}

// BatchSender is an optional Conn extension for senders that can coalesce
// several messages into one underlying write: the TCP transports implement
// it by assembling every frame before touching the socket (binary) or
// flushing the buffered writer once after the last encode (gob), so a
// barrier release fanning out to many queued messages costs one syscall
// instead of one per message. SendBatch has Send's delivery and concurrency
// semantics; an empty batch is a no-op.
type BatchSender interface {
	SendBatch([]Message) error
}

// SerializingSender is an optional Conn extension marking transports whose
// Send and SendBatch fully serialize the message payload before returning:
// once the call returns, buffers the message aliases are never read again by
// the transport or the peer, so the caller may recycle them. Both TCP
// transports qualify — they encode into the socket (binary) or the write
// buffer (gob) synchronously. The in-process channel transport does not: it
// hands the Message itself to the peer, which may hold the aliased tensors
// indefinitely.
type SerializingSender interface {
	// SerializesOnSend is a marker method; implementations do nothing.
	SerializesOnSend()
}

// Conn is a bidirectional, message-oriented connection between one worker
// and the server. Send is safe for concurrent use from multiple goroutines
// (a worker's heartbeat goroutine sends alongside the protocol goroutine);
// Recv must not be called concurrently with itself.
type Conn interface {
	// Send transmits one message.
	Send(Message) error
	// Recv blocks until the next message arrives or the connection closes.
	Recv() (Message, error)
	// Close releases the connection. Pending Recv calls return an error.
	Close() error
}

// Listener accepts incoming worker connections on the server side.
type Listener interface {
	// Accept blocks until a worker connects or the listener closes.
	Accept() (Conn, error)
	// Close stops accepting connections.
	Close() error
	// Addr returns the address workers should dial, when applicable.
	Addr() string
}
