package transport

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"
)

// benchPush is the message both wire benchmarks move: a realistic dense push
// (the PR 2 gradient set, ~97 KiB of float32 payload).
func benchPush() Message {
	return Message{Type: MsgPush, Worker: 1, Iteration: 9, Version: 17, Tensors: ToWire(testGrads(42))}
}

// BenchmarkWireEncode compares encoding one dense push per wire format,
// reporting the encoded size. The binary encoder reuses its frame buffer the
// way a connection does; gob gets the same courtesy of a reused stream.
func BenchmarkWireEncode(b *testing.B) {
	m := benchPush()
	b.Run("binary", func(b *testing.B) {
		var buf []byte
		var err error
		for i := 0; i < b.N; i++ {
			if buf, err = appendFrame(buf[:0], &m); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(buf)), "wire-B/op")
	})
	b.Run("gob", func(b *testing.B) {
		var n countingWriter
		enc := gob.NewEncoder(&n)
		for i := 0; i < b.N; i++ {
			before := n.n
			if err := enc.Encode(&m); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(n.n-before), "wire-B/op")
			}
		}
	})
}

// BenchmarkWireDecode compares decoding one dense push per wire format.
func BenchmarkWireDecode(b *testing.B) {
	m := benchPush()
	b.Run("binary", func(b *testing.B) {
		frame, err := appendFrame(nil, &m)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := parseBody(frame[5], frame[4], frame[headerSize:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		for i := 0; i < b.N; i++ {
			var out Message
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireRoundTripTCP moves a dense push over a real loopback socket
// and back per wire format — syscalls, framing and decode included.
func BenchmarkWireRoundTripTCP(b *testing.B) {
	for _, wire := range []WireFormat{WireBinary, WireGob} {
		b.Run(string(wire), func(b *testing.B) {
			l, err := ListenWire("127.0.0.1:0", wire)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go func() {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				for {
					msg, err := conn.Recv()
					if err != nil {
						return
					}
					if conn.Send(msg) != nil {
						return
					}
				}
			}()
			conn, err := DialWire(l.Addr(), wire)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()

			m := benchPush()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.Send(m); err != nil {
					b.Fatal(err)
				}
				if _, err := conn.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// countingWriter counts bytes discarded.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

var _ io.Writer = (*countingWriter)(nil)
