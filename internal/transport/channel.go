package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: connection closed")

// chanConn is one endpoint of an in-process connection pair.
type chanConn struct {
	send chan<- Message
	recv <-chan Message

	// meter, when non-nil, counts frames per message type with approximate
	// payload sizes — the channel transport moves references, not bytes.
	meter *Metrics

	closeOnce sync.Once
	closed    chan struct{}
	peer      *chanConn
}

// Pipe returns two connected in-process endpoints. Messages sent on one are
// received on the other. The buffer keeps the parameter server's release
// fan-out from blocking on slow readers.
func Pipe() (Conn, Conn) {
	const depth = 64
	ab := make(chan Message, depth)
	ba := make(chan Message, depth)
	a := &chanConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &chanConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m Message) error {
	// Check for closure first so that Send on a closed connection fails even
	// when buffer space would still accept the message.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- m:
		c.meter.Sent(m.Type, approxSize(&m))
		return nil
	}
}

// Recv implements Conn.
func (c *chanConn) Recv() (Message, error) {
	select {
	case <-c.closed:
		return Message{}, ErrClosed
	case m, ok := <-c.recv:
		if !ok {
			return Message{}, ErrClosed
		}
		c.meter.Received(m.Type, approxSize(&m))
		return m, nil
	case <-c.peer.closed:
		// Drain any messages the peer sent before closing.
		select {
		case m, ok := <-c.recv:
			if ok {
				c.meter.Received(m.Type, approxSize(&m))
				return m, nil
			}
		default:
		}
		return Message{}, ErrClosed
	}
}

// Close implements Conn.
func (c *chanConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// chanListener hands out pre-connected in-process connections.
type chanListener struct {
	conns chan Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	meter  *Metrics
}

// NewChanListener returns an in-process listener. Call Dial to obtain the
// worker end of a new connection; the server end is returned by Accept.
func NewChanListener() *ChanListener {
	return &ChanListener{
		inner: &chanListener{
			conns: make(chan Conn, 16),
			done:  make(chan struct{}),
		},
	}
}

// ChanListener is an in-process Listener whose Dial method creates worker
// connections without any networking.
type ChanListener struct {
	inner *chanListener
}

// SetMeter installs a transport meter on the listener: the server end of
// every connection created by a subsequent Dial counts its traffic into
// meter. Call before serving; nil disables.
func (l *ChanListener) SetMeter(m *Metrics) {
	l.inner.mu.Lock()
	l.inner.meter = m
	l.inner.mu.Unlock()
}

// Dial creates a new in-process connection to the listener and returns the
// worker endpoint.
func (l *ChanListener) Dial() (Conn, error) {
	l.inner.mu.Lock()
	closed := l.inner.closed
	meter := l.inner.meter
	l.inner.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	serverEnd, workerEnd := Pipe()
	serverEnd.(*chanConn).meter = meter
	select {
	case l.inner.conns <- serverEnd:
		return workerEnd, nil
	case <-l.inner.done:
		return nil, ErrClosed
	}
}

// Accept implements Listener.
func (l *ChanListener) Accept() (Conn, error) {
	select {
	case c := <-l.inner.conns:
		return c, nil
	case <-l.inner.done:
		return nil, ErrClosed
	}
}

// Close implements Listener.
func (l *ChanListener) Close() error {
	l.inner.mu.Lock()
	defer l.inner.mu.Unlock()
	if !l.inner.closed {
		l.inner.closed = true
		close(l.inner.done)
	}
	return nil
}

// Addr implements Listener.
func (l *ChanListener) Addr() string { return fmt.Sprintf("inproc://%p", l.inner) }
