package transport

import (
	"math/rand"
	"sync"
	"testing"

	"dssp/internal/tensor"
)

func TestMessageTypeStrings(t *testing.T) {
	types := []MessageType{
		MsgRegister, MsgRegistered, MsgPush, MsgOK, MsgPull,
		MsgWeights, MsgDone, MsgShutdown, MsgError,
	}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Errorf("type %d has empty or duplicate name %q", ty, s)
		}
		seen[s] = true
	}
	if MessageType(99).String() != "MessageType(99)" {
		t.Error("unknown type string wrong")
	}
}

func TestWireTensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := []*tensor.Tensor{
		tensor.New(3, 4).RandNormal(rng, 0, 1),
		tensor.New(5).RandNormal(rng, 0, 1),
	}
	wire := ToWire(orig)
	// Mutating the original after ToWire must not affect the wire copy.
	orig[0].Fill(0)
	back, err := FromWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].ApproxEqual(orig[0], 0) {
		t.Fatal("wire copy aliases the original tensor")
	}
	if !back[1].ApproxEqual(orig[1], 0) {
		t.Fatal("second tensor did not round trip")
	}
}

func TestFromWireRejectsCorruptTensors(t *testing.T) {
	bad := []WireTensor{{Shape: []int{2, 2}, Data: []float32{1, 2, 3}}}
	if _, err := FromWire(bad); err == nil {
		t.Fatal("expected error for mismatched data length")
	}
	bad = []WireTensor{{Shape: []int{0}, Data: nil}}
	if _, err := FromWire(bad); err == nil {
		t.Fatal("expected error for non-positive dimension")
	}
}

func TestPipeDeliversMessagesInOrder(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(Message{Type: MsgPush, Iteration: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Iteration != i {
			t.Fatalf("message %d arrived out of order: %d", i, msg.Iteration)
		}
	}
}

func TestPipeCloseUnblocksReceiver(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; err == nil {
		t.Fatal("Recv should fail after the peer closes")
	}
	if err := a.Send(Message{Type: MsgPush}); err == nil {
		t.Fatal("Send on a closed connection should fail")
	}
}

func TestChanListenerDialAccept(t *testing.T) {
	l := NewChanListener()
	defer l.Close()
	if l.Addr() == "" {
		t.Fatal("listener address empty")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverConn, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		msg, err := serverConn.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		msg.Worker++
		if err := serverConn.Send(msg); err != nil {
			t.Errorf("server send: %v", err)
		}
	}()

	workerConn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := workerConn.Send(Message{Type: MsgRegister, Worker: 6}); err != nil {
		t.Fatal(err)
	}
	reply, err := workerConn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Worker != 7 {
		t.Fatalf("echo worker = %d, want 7", reply.Worker)
	}
	wg.Wait()
}

func TestChanListenerCloseStopsDialAndAccept(t *testing.T) {
	l := NewChanListener()
	l.Close()
	if _, err := l.Dial(); err == nil {
		t.Fatal("Dial after Close should fail")
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("Accept after Close should fail")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rng := rand.New(rand.NewSource(2))
	payload := ToWire([]*tensor.Tensor{tensor.New(4, 4).RandNormal(rng, 0, 1)})

	serverDone := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			serverDone <- err
			return
		}
		msg.Type = MsgWeights
		serverDone <- conn.Send(msg)
	}()

	conn, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(Message{Type: MsgPush, Worker: 3, Version: 42, Tensors: payload}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgWeights || reply.Worker != 3 || reply.Version != 42 {
		t.Fatalf("unexpected reply %+v", reply)
	}
	got, err := FromWire(reply.Tensors)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromWire(payload)
	if !got[0].ApproxEqual(want[0], 0) {
		t.Fatal("tensor payload corrupted over TCP")
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialFailsForUnreachableAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error for unreachable port")
	}
}

func TestListenFailsForBadAddress(t *testing.T) {
	if _, err := Listen("not-an-address:99999"); err == nil {
		t.Fatal("expected listen error")
	}
}
