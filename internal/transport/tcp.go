package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// tcpBufferSize sizes the per-direction bufio buffers: large enough that a
// typical message's many small gob writes coalesce into few syscalls, small
// enough to be irrelevant against parameter-sized payloads.
const tcpBufferSize = 64 << 10

// tcpConn is a Conn over a TCP socket using gob encoding over buffered I/O:
// gob emits many small writes per message, so the encoder writes into a
// bufio.Writer that is flushed once per Send, and the decoder reads through
// a bufio.Reader instead of hitting the kernel per field. A mutex on each
// direction allows Send and Recv to be used from different goroutines.
type tcpConn struct {
	conn net.Conn

	encMu sync.Mutex
	bw    *bufio.Writer
	enc   *gob.Encoder
	decMu sync.Mutex
	dec   *gob.Decoder
}

// newTCPConn wraps an established socket.
func newTCPConn(c net.Conn) *tcpConn {
	bw := bufio.NewWriterSize(c, tcpBufferSize)
	return &tcpConn{
		conn: c,
		bw:   bw,
		enc:  gob.NewEncoder(bw),
		dec:  gob.NewDecoder(bufio.NewReaderSize(c, tcpBufferSize)),
	}
}

// Send implements Conn. The message is encoded into the write buffer and
// flushed to the socket before Send returns, so a sent message is never
// stranded in user space.
func (c *tcpConn) Send(m Message) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if err := c.enc.Encode(&m); err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Type, err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush %v: %w", m.Type, err)
	}
	return nil
}

// Recv implements Conn.
func (c *tcpConn) Recv() (Message, error) {
	c.decMu.Lock()
	defer c.decMu.Unlock()
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return Message{}, fmt.Errorf("transport: recv: %w", err)
	}
	return m, nil
}

// Close implements Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

// tcpListener adapts a net.Listener to the Listener interface.
type tcpListener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (e.g. ":7070" or "127.0.0.1:0").
func Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return newTCPConn(c), nil
}

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Dial connects to a parameter server listening on addr over TCP.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}
