package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// WireFormat selects the encoding spoken on a TCP connection. Both ends of a
// connection must agree; the handshake cannot negotiate the format itself
// because the very first frame is already encoded in it. A mismatch fails
// fast with an explicit error on both sides (see docs/PROTOCOL.md §6).
type WireFormat string

const (
	// WireBinary is the versioned zero-copy binary frame protocol
	// (docs/PROTOCOL.md) — the default.
	WireBinary WireFormat = "binary"
	// WireGob is the legacy gob stream, kept as an escape hatch behind the
	// -wire flag and for A/B benchmarks against the binary protocol.
	WireGob WireFormat = "gob"
)

// ParseWireFormat validates a wire format name; "" selects WireBinary.
func ParseWireFormat(s string) (WireFormat, error) {
	switch WireFormat(s) {
	case "":
		return WireBinary, nil
	case WireBinary, WireGob:
		return WireFormat(s), nil
	}
	return "", fmt.Errorf("transport: unknown wire format %q (want %q or %q)", s, WireBinary, WireGob)
}

// tcpBufferSize sizes the gob transport's per-direction bufio buffers: large
// enough that a typical message's many small gob writes coalesce into few
// syscalls, small enough to be irrelevant against parameter-sized payloads.
const tcpBufferSize = 64 << 10

// tcpConn is a Conn over a TCP socket using gob encoding over buffered I/O:
// gob emits many small writes per message, so the encoder writes into a
// bufio.Writer that is flushed once per Send, and the decoder reads through
// a bufio.Reader instead of hitting the kernel per field. A mutex on each
// direction allows Send and Recv to be used from different goroutines.
type tcpConn struct {
	conn net.Conn
	// server marks the accepting side, which answers a first-message wire
	// mismatch in the binary format so a misconfigured binary worker fails
	// fast instead of waiting forever for a reply it cannot parse.
	server bool
	// meter, when non-nil, counts frames and bytes per message type and
	// direction. Gob has no frame header, so sizes are measured as exact
	// stream consumption through the counting wrappers below.
	meter *Metrics
	cw    *meterWriter
	cr    *meterReader

	encMu sync.Mutex
	bw    *bufio.Writer
	enc   *gob.Encoder
	decMu sync.Mutex
	br    *bufio.Reader
	dec   *gob.Decoder
	recvs int
}

// newTCPConn wraps an established socket in the legacy gob framing.
func newTCPConn(c net.Conn, server bool) *tcpConn {
	cw := &meterWriter{w: c}
	cr := &meterReader{r: c}
	bw := bufio.NewWriterSize(cw, tcpBufferSize)
	br := bufio.NewReaderSize(cr, tcpBufferSize)
	return &tcpConn{
		conn:   c,
		server: server,
		cw:     cw,
		cr:     cr,
		bw:     bw,
		enc:    gob.NewEncoder(bw),
		br:     br,
		dec:    gob.NewDecoder(br),
	}
}

// sentLocked reports bytes handed to the encoder so far (written plus
// still buffered); caller holds encMu.
func (c *tcpConn) sentLocked() int64 { return c.cw.n + int64(c.bw.Buffered()) }

// recvLocked reports bytes the decoder consumed so far (read minus still
// buffered); caller holds decMu.
func (c *tcpConn) recvLocked() int64 { return c.cr.n - int64(c.br.Buffered()) }

// Send implements Conn. The message is encoded into the write buffer and
// flushed to the socket before Send returns, so a sent message is never
// stranded in user space.
func (c *tcpConn) Send(m Message) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	before := c.sentLocked()
	if err := c.enc.Encode(&m); err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Type, err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush %v: %w", m.Type, err)
	}
	c.meter.Sent(m.Type, int(c.sentLocked()-before))
	return nil
}

// SendBatch implements BatchSender: all messages are encoded into the write
// buffer and flushed together, coalescing gob's many small writes across the
// whole batch into as few syscalls as the buffer allows.
func (c *tcpConn) SendBatch(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	c.encMu.Lock()
	defer c.encMu.Unlock()
	for i := range ms {
		before := c.sentLocked()
		if err := c.enc.Encode(&ms[i]); err != nil {
			return fmt.Errorf("transport: send %v: %w", ms[i].Type, err)
		}
		c.meter.Sent(ms[i].Type, int(c.sentLocked()-before))
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush batch of %d: %w", len(ms), err)
	}
	c.meter.Batch(len(ms))
	return nil
}

// Recv implements Conn. Before decoding the first message on the accepting
// side, the stream is sniffed for the binary protocol's magic: a worker
// speaking the binary wire gets an explicit binary Error frame back and this
// side reports the mismatch, instead of both ends exchanging opaque gob
// errors and retries.
func (c *tcpConn) Recv() (Message, error) {
	c.decMu.Lock()
	defer c.decMu.Unlock()
	first := c.recvs == 0
	c.recvs++
	if first && c.server {
		// Peek one byte past the magic so the diagnostic names the version
		// the peer actually sent (a binary frame is always longer than 5
		// bytes, so this never blocks on a legitimate binary peer).
		if hdr, err := c.br.Peek(len(wireMagic) + 1); err == nil && string(hdr[:len(wireMagic)]) == wireMagic {
			c.sendBinaryError(fmt.Sprintf(
				"%s: server speaks the legacy gob wire format; restart the worker with -wire gob (it sent a binary v%d frame)",
				wireMismatchToken, hdr[len(wireMagic)]))
			return Message{}, fmt.Errorf("transport: recv: %w: peer sent a binary wire frame to a gob server", ErrWireMismatch)
		}
	}
	var m Message
	before := c.recvLocked()
	if err := c.dec.Decode(&m); err != nil {
		if first {
			return Message{}, fmt.Errorf("transport: recv: gob decode of the first message failed "+
				"(the peer may be speaking the binary wire protocol; check -wire): %w", err)
		}
		return Message{}, fmt.Errorf("transport: recv: %w", err)
	}
	c.meter.Received(m.Type, int(c.recvLocked()-before))
	// A gob-decoded message owns all of its freshly allocated payload.
	m.ownedPayload = true
	return m, nil
}

// sendBinaryError writes one binary-framed MsgError onto the socket,
// best-effort.
func (c *tcpConn) sendBinaryError(text string) {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	writeBinaryError(c.conn, text)
}

// Close implements Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

// SerializesOnSend marks the gob transport as a SerializingSender: Send and
// SendBatch encode the payload into the write buffer before returning.
func (c *tcpConn) SerializesOnSend() {}

// writeGobError best-effort writes a gob-encoded MsgError to w — the reply a
// binary server sends a gob peer so its decoder produces a readable error.
func writeGobError(w io.Writer, text string) {
	bw := bufio.NewWriterSize(w, 1<<10)
	if err := gob.NewEncoder(bw).Encode(&Message{Type: MsgError, Error: text}); err == nil {
		_ = bw.Flush()
	}
}

// writeBinaryError best-effort writes a binary-framed MsgError to w — the
// reply a gob server sends a binary peer so its decoder produces a readable
// error.
func writeBinaryError(w io.Writer, text string) {
	frame, err := appendFrame(nil, &Message{Type: MsgError, Error: text})
	if err == nil {
		_, _ = w.Write(frame)
	}
}

// tcpListener adapts a net.Listener to the Listener interface, wrapping
// accepted sockets in the configured wire format.
type tcpListener struct {
	l     net.Listener
	wire  WireFormat
	meter *Metrics
}

// Listen starts a TCP listener on addr (e.g. ":7070" or "127.0.0.1:0")
// speaking the default binary wire protocol.
func Listen(addr string) (Listener, error) {
	return ListenWire(addr, WireBinary)
}

// ListenWire starts a TCP listener speaking the given wire format.
func ListenWire(addr string, wire WireFormat) (Listener, error) {
	return ListenWireMetered(addr, wire, nil)
}

// ListenWireMetered is ListenWire with transport metering: every accepted
// connection counts its frames and bytes into meter (nil disables).
func ListenWireMetered(addr string, wire WireFormat, meter *Metrics) (Listener, error) {
	wire, err := ParseWireFormat(string(wire))
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l, wire: wire, meter: meter}, nil
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	if t.wire == WireGob {
		conn := newTCPConn(c, true)
		conn.meter = t.meter
		return conn, nil
	}
	conn := newBinaryConn(c, true)
	conn.meter = t.meter
	return conn, nil
}

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Dial connects to a parameter server listening on addr over TCP, speaking
// the default binary wire protocol.
func Dial(addr string) (Conn, error) {
	return DialWire(addr, WireBinary)
}

// DialWire connects to a parameter server with the given wire format.
func DialWire(addr string, wire WireFormat) (Conn, error) {
	return DialWireMetered(addr, wire, nil)
}

// DialWireMetered is DialWire with transport metering on the resulting
// connection (nil disables).
func DialWireMetered(addr string, wire WireFormat, meter *Metrics) (Conn, error) {
	wire, err := ParseWireFormat(string(wire))
	if err != nil {
		return nil, err
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if wire == WireGob {
		conn := newTCPConn(c, false)
		conn.meter = meter
		return conn, nil
	}
	conn := newBinaryConn(c, false)
	conn.meter = meter
	return conn, nil
}
