package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestV2FieldsRoundTrip pins the delta-pull fields through the binary codec
// and checks the frame is stamped protocol version 2.
func TestV2FieldsRoundTrip(t *testing.T) {
	cases := []Message{
		{Type: MsgPull, Worker: 3, PullVersions: []int64{0, 7, 42, -1}},
		{Type: MsgWeights, Worker: 1, Shard: 2, Shards: 4, Base: 3, Total: 9, Version: 17, ShardVersion: 5, Unchanged: true},
		{Type: MsgRegister, Worker: 2, DeltaPull: true},
		{Type: MsgRegistered, Worker: 2, Version: 9, StoreShards: 4, DeltaPull: true},
	}
	for i, m := range cases {
		frame, err := appendFrame(nil, &m)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if frame[4] != 2 {
			t.Fatalf("case %d: frame version %d, want 2", i, frame[4])
		}
		fr := newFrameReader(bufio.NewReader(bytes.NewReader(frame)))
		got, err := fr.readFrame()
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		got.ownedPayload = false
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("case %d: round trip changed the message:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

// TestV1FramesStayV1 pins backward compatibility at the byte level: a
// message using no delta-pull field must encode to a version-1 frame,
// identical to what a v1-only build would emit.
func TestV1FramesStayV1(t *testing.T) {
	for _, m := range []Message{
		{Type: MsgRegister, Worker: 1, Codec: "topk", CodecTopK: 0.1},
		{Type: MsgPull, Worker: 2},
		{Type: MsgWeights, Worker: 0, Shard: 1, Shards: 2, Base: 2, Total: 4, Version: 12,
			Tensors: ToWire(smallMLPGrads(2)[2:])},
		{Type: MsgHeartbeat, Worker: 5},
	} {
		frame, err := appendFrame(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		if frame[4] != 1 {
			t.Fatalf("%v frame without v2 fields stamped version %d, want 1", m.Type, frame[4])
		}
	}
}

// TestV2TagInsideV1FrameRejected pins the version gate: the same bytes that
// decode as a v2 frame must be rejected when the header claims version 1,
// so a v1 conversation decodes under exactly the v1 rules.
func TestV2TagInsideV1FrameRejected(t *testing.T) {
	m := Message{Type: MsgPull, Worker: 3, PullVersions: []int64{1, 2}}
	frame, err := appendFrame(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = 1 // lie about the version
	fr := newFrameReader(bufio.NewReader(bytes.NewReader(frame)))
	if _, err := fr.readFrame(); err == nil {
		t.Fatal("v2 tag inside a version-1 frame decoded without error")
	}
}

// countingConn is a net.Conn that counts Write calls and discards the data —
// the probe for how many syscalls a send path would issue.
type countingConn struct {
	writes atomic.Int64
	bytes  atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	c.bytes.Add(int64(len(p)))
	return len(p), nil
}
func (c *countingConn) Read(p []byte) (int, error)         { select {} }
func (c *countingConn) Close() error                       { return nil }
func (c *countingConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *countingConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *countingConn) SetDeadline(t time.Time) error      { return nil }
func (c *countingConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *countingConn) SetWriteDeadline(t time.Time) error { return nil }

// batchMessages builds a release-fanout-shaped batch: many small control
// frames, the case the outbox writer coalesces.
func batchMessages(n int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i] = Message{Type: MsgOK, Worker: i + 1}
	}
	return ms
}

// TestSendBatchIssuesOneWrite pins the syscall coalescing contract on both
// TCP encodings: a batch of N messages reaches the socket in exactly one
// Write for the binary protocol, and in however few writes the gob buffer
// needs — but strictly fewer than one per message — for gob.
func TestSendBatchIssuesOneWrite(t *testing.T) {
	const n = 16
	t.Run("binary", func(t *testing.T) {
		probe := &countingConn{}
		conn := newBinaryConn(probe, false)
		var bs BatchSender = conn
		if err := bs.SendBatch(batchMessages(n)); err != nil {
			t.Fatal(err)
		}
		if got := probe.writes.Load(); got != 1 {
			t.Fatalf("binary SendBatch of %d messages issued %d writes, want 1", n, got)
		}
		// Individual sends for contrast: exactly one write each.
		probe2 := &countingConn{}
		conn2 := newBinaryConn(probe2, false)
		for _, m := range batchMessages(n) {
			if err := conn2.Send(m); err != nil {
				t.Fatal(err)
			}
		}
		if got := probe2.writes.Load(); got != n {
			t.Fatalf("unbatched sends issued %d writes, want %d", got, n)
		}
	})
	t.Run("gob", func(t *testing.T) {
		probe := &countingConn{}
		conn := newTCPConn(probe, false)
		var bs BatchSender = conn
		if err := bs.SendBatch(batchMessages(n)); err != nil {
			t.Fatal(err)
		}
		batched := probe.writes.Load()
		if batched < 1 {
			t.Fatal("gob SendBatch never wrote")
		}
		probe2 := &countingConn{}
		conn2 := newTCPConn(probe2, false)
		for _, m := range batchMessages(n) {
			if err := conn2.Send(m); err != nil {
				t.Fatal(err)
			}
		}
		unbatched := probe2.writes.Load()
		if batched >= unbatched {
			t.Fatalf("gob SendBatch used %d writes, individual sends %d — batching saved nothing", batched, unbatched)
		}
	})
}

// BenchmarkSendBatchSyscalls pins the syscall reduction of outbox flush
// coalescing as a benchmark metric: writes/op is the number of Write calls
// (syscalls, on a real socket) needed to move a 16-message release fanout.
func BenchmarkSendBatchSyscalls(b *testing.B) {
	const n = 16
	for _, mode := range []string{"batched", "unbatched"} {
		for _, wire := range []string{"binary", "gob"} {
			b.Run(fmt.Sprintf("%s/%s", wire, mode), func(b *testing.B) {
				probe := &countingConn{}
				var conn Conn
				if wire == "binary" {
					conn = newBinaryConn(probe, false)
				} else {
					conn = newTCPConn(probe, false)
				}
				ms := batchMessages(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "batched" {
						if err := conn.(BatchSender).SendBatch(ms); err != nil {
							b.Fatal(err)
						}
					} else {
						for _, m := range ms {
							if err := conn.Send(m); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(probe.writes.Load())/float64(b.N), "writes/op")
			})
		}
	}
}
