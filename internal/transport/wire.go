package transport

// The versioned binary wire protocol spoken on TCP connections.
//
// Every message travels as one frame: a fixed 12-byte little-endian header
// (magic, protocol version, message type, body length) followed by a body of
// tagged fields. Tensor payloads are written as raw float32 slabs, 4-byte
// aligned relative to the body start, so encoding is a header write plus
// copy and the decoder can alias the read buffer instead of allocating and
// converting per value — the properties gob fundamentally cannot offer (it
// re-encodes every float through reflection and a varint, costing ~6 bytes
// and several allocations per float32).
//
// docs/PROTOCOL.md is the normative byte-level specification of everything
// in this file; keep the two in sync.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"unsafe"

	"dssp/internal/compress"
)

// Frame header constants. The header is 12 bytes:
//
//	offset size field
//	0      4    magic "DSSP"
//	4      1    protocol version (wireVersionMin..wireVersion)
//	5      1    message type
//	6      2    reserved, must be zero
//	8      4    body length, uint32 little endian
const (
	wireMagic = "DSSP"
	// wireVersion is the newest protocol version this build speaks; version
	// 2 added the delta-pull fields (tags 0x0F..0x12), version 3 the
	// server-group fields (tags 0x13..0x16) and message types 13..15, and
	// version 4 the aggregation-tree fields (tags 0x17..0x18). Every frame is
	// stamped with the lowest version able to express it (frameVersion), so a
	// conversation that never uses v2/v3/v4 fields is byte-identical to a v1
	// conversation — that is what keeps v1 peers interoperable with a v4
	// server: the fields a v4 server would need v4 for are negotiation-gated
	// (or cluster-only message types) and an older peer can never negotiate
	// them.
	wireVersion    = 4
	wireVersionMin = 1
	headerSize     = 12

	// maxFrameBody caps the declared body length. It bounds what a decoder
	// will ever read for one message (and, combined with chunked reads,
	// what it allocates) against corrupt or hostile length fields.
	maxFrameBody = 1 << 28

	// bodyReadChunk is the allocation step while reading a body: the buffer
	// grows as bytes actually arrive, so a forged multi-megabyte length
	// header costs at most one chunk of memory, not the declared size.
	bodyReadChunk = 1 << 20

	// smallBodyMax is the largest body decoded into the connection's
	// reusable scratch buffer. Control messages (Register, OK, Pull,
	// Heartbeat, ...) all fit, making the steady-state protocol chatter
	// allocation-free; payload messages get a private buffer their tensors
	// may alias.
	smallBodyMax = 4 << 10

	// maxTensorDims bounds the rank of a wire tensor. The models top out at
	// 4 (conv weights); 8 leaves headroom without letting a corrupt rank
	// byte drive shape allocation.
	maxTensorDims = 8
)

// Body field tags, ascending. A field whose value is the Go zero value is
// omitted; present fields must appear in strictly ascending tag order, at
// most once each.
const (
	tagWorker      = 0x01 // uint32 (two's-complement int32)
	tagIteration   = 0x02 // uint32 (two's-complement int32)
	tagVersion     = 0x03 // uint64 (two's-complement int64)
	tagShard       = 0x04 // uint32 (two's-complement int32)
	tagShards      = 0x05 // uint32 (two's-complement int32)
	tagBase        = 0x06 // uint32 (two's-complement int32)
	tagTotal       = 0x07 // uint32 (two's-complement int32)
	tagStoreShards = 0x08 // uint32 (two's-complement int32)
	tagCodec       = 0x09 // uint8 length + bytes
	tagCodecTopK   = 0x0A // uint64 (IEEE 754 float64 bits)
	tagCodecPull   = 0x0B // uint8, must be 1
	tagError       = 0x0C // uint32 length + bytes
	tagTensors     = 0x0D // tensor section
	tagPacked      = 0x0E // packed section

	// Version-2 tags (delta pulls). A frame carrying any of these is stamped
	// protocol version 2; decoders reject them inside a version-1 frame.
	tagPullVersions = 0x0F // uint32 count + count × uint64 (two's-complement int64)
	tagShardVersion = 0x10 // uint64 (two's-complement int64)
	tagUnchanged    = 0x11 // uint8, must be 1
	tagDeltaPull    = 0x12 // uint8, must be 1

	// Version-3 tags (server groups). A frame carrying any of these — or one
	// of the cluster message types MsgClusterMap, MsgServerAnnounce,
	// MsgPromote — is stamped protocol version 3; decoders reject the tags
	// inside an older frame.
	tagServers    = 0x13 // uint32 count + count × (uint16 addr len + bytes + 4 × uint32)
	tagMapVersion = 0x14 // uint64 (two's-complement int64)
	tagReplica    = 0x15 // uint8, must be 1
	tagCluster    = 0x16 // uint8, must be 1

	// Version-4 tags (aggregation trees). A frame carrying either is stamped
	// protocol version 4; decoders reject them inside an older frame.
	tagRelay       = 0x17 // uint8, must be 1
	tagPushEntries = 0x18 // uint32 count + count × (uint32 worker + uint64 version + uint32 iteration)
)

// frameVersion returns the lowest protocol version able to express m: 4 when
// any aggregation-tree field is present, 3 when any server-group field is
// present or the type itself is a cluster message (so a pre-cluster peer
// rejects the frame outright instead of silently ignoring an unknown type),
// 2 when any delta-pull field is present, 1 otherwise. Encoding at the
// minimum keeps frames canonical and lets a v4 build interoperate with older
// peers for every conversation that never negotiates newer features.
func frameVersion(m *Message) byte {
	if m.Relay || len(m.PushEntries) > 0 {
		return 4
	}
	if len(m.Servers) > 0 || m.MapVersion != 0 || m.Replica || m.Cluster ||
		m.Type == MsgClusterMap || m.Type == MsgServerAnnounce || m.Type == MsgPromote {
		return 3
	}
	if len(m.PullVersions) > 0 || m.ShardVersion != 0 || m.Unchanged || m.DeltaPull {
		return 2
	}
	return 1
}

// FrameVersion reports the binary protocol version the wire encoder would
// stamp on m (docs/PROTOCOL.md §3): 4 when any aggregation-tree field is
// present, 3 when any server-group field or cluster message type is present,
// 2 when any delta-pull field is present, 1 otherwise. An older peer rejects
// higher-version frames, so higher layers use this to pin that messages
// bound for un-negotiated sessions stay expressible in protocol version 1.
func FrameVersion(m Message) byte { return frameVersion(&m) }

// hostLittleEndian reports whether the running machine stores integers
// little endian. On such hosts (every supported platform in practice) float
// slabs are moved with a single copy / alias; a big-endian host falls back
// to per-value conversion, keeping the wire format identical.
var hostLittleEndian = func() bool {
	var b [2]byte
	binary.NativeEndian.PutUint16(b[:], 1)
	return b[0] == 1
}()

// wireMismatchToken appears in every mismatch error this package produces —
// the local sentinels below and the cross-format Error replies a server
// sends a misconfigured peer — so IsWireMismatch can recognize the
// condition even after the text crossed the wire as a plain string.
const wireMismatchToken = "wire protocol mismatch"

// ErrWireMismatch tags decode failures that look like the peer speaking a
// different wire format (bad frame magic), and ErrWireVersion those where
// the peer speaks the binary protocol at an unsupported version. Callers
// fail fast with actionable advice instead of a generic parse error — and
// the server answers each in the format the peer can actually decode.
var (
	ErrWireMismatch = errors.New("transport: " + wireMismatchToken)
	ErrWireVersion  = errors.New("transport: " + wireMismatchToken + " (version)")
)

// IsWireMismatch reports whether err indicates a wire-format or
// protocol-version mismatch — including one reported by the peer and
// relayed as error text. The condition is permanent for a given pair of
// configurations, so reconnect loops must treat it as fatal rather than
// retrying it for their whole backoff budget.
func IsWireMismatch(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrWireMismatch) || errors.Is(err, ErrWireVersion) {
		return true
	}
	return strings.Contains(err.Error(), wireMismatchToken)
}

// float32Bytes views a float32 slice as raw bytes (little-endian hosts only).
func float32Bytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), 4*len(f))
}

// bytesFloat32 views a 4-byte-aligned byte slice as float32 values
// (little-endian hosts only). The caller guarantees len(b) == 4*n and that
// &b[0] is 4-byte aligned.
func bytesFloat32(b []byte, n int) []float32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}

// --- Encoding ---------------------------------------------------------------

// appendFrame appends the complete frame for m (header + body) to dst and
// returns the extended slice. It is the single source of truth for what goes
// on the wire; Send and the tests both route through it.
func appendFrame(dst []byte, m *Message) ([]byte, error) {
	if m.Type < 1 || m.Type > 255 {
		return dst, fmt.Errorf("transport: message type %d outside the wire range [1,255]", m.Type)
	}
	start := len(dst)
	// Header placeholder; the length lands after the body is assembled.
	dst = append(dst, wireMagic...)
	dst = append(dst, frameVersion(m), byte(m.Type), 0, 0, 0, 0, 0, 0)

	bodyStart := len(dst)
	var err error
	if dst, err = appendBody(dst, bodyStart, m); err != nil {
		return dst[:start], err
	}
	bodyLen := len(dst) - bodyStart
	if bodyLen > maxFrameBody {
		return dst[:start], fmt.Errorf("transport: %v frame body of %d bytes exceeds the %d-byte limit",
			m.Type, bodyLen, maxFrameBody)
	}
	binary.LittleEndian.PutUint32(dst[start+8:], uint32(bodyLen))
	return dst, nil
}

// appendBody appends m's tagged fields. bodyStart is the body's offset in
// dst, the origin for slab alignment.
func appendBody(dst []byte, bodyStart int, m *Message) ([]byte, error) {
	var err error
	if dst, err = appendIntField(dst, tagWorker, m.Worker, "Worker"); err != nil {
		return dst, err
	}
	if dst, err = appendIntField(dst, tagIteration, m.Iteration, "Iteration"); err != nil {
		return dst, err
	}
	if m.Version != 0 {
		dst = append(dst, tagVersion)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Version))
	}
	if dst, err = appendIntField(dst, tagShard, m.Shard, "Shard"); err != nil {
		return dst, err
	}
	if dst, err = appendIntField(dst, tagShards, m.Shards, "Shards"); err != nil {
		return dst, err
	}
	if dst, err = appendIntField(dst, tagBase, m.Base, "Base"); err != nil {
		return dst, err
	}
	if dst, err = appendIntField(dst, tagTotal, m.Total, "Total"); err != nil {
		return dst, err
	}
	if dst, err = appendIntField(dst, tagStoreShards, m.StoreShards, "StoreShards"); err != nil {
		return dst, err
	}
	if m.Codec != "" {
		if len(m.Codec) > 255 {
			return dst, fmt.Errorf("transport: codec name of %d bytes exceeds 255", len(m.Codec))
		}
		dst = append(dst, tagCodec, byte(len(m.Codec)))
		dst = append(dst, m.Codec...)
	}
	if m.CodecTopK != 0 {
		dst = append(dst, tagCodecTopK)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CodecTopK))
	}
	if m.CodecPull {
		dst = append(dst, tagCodecPull, 1)
	}
	if m.Error != "" {
		if len(m.Error) > maxFrameBody {
			return dst, fmt.Errorf("transport: error text of %d bytes is unreasonable", len(m.Error))
		}
		dst = append(dst, tagError)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Error)))
		dst = append(dst, m.Error...)
	}
	if len(m.Tensors) > 0 {
		if dst, err = appendTensorSection(dst, bodyStart, m.Tensors); err != nil {
			return dst, err
		}
	}
	if len(m.Packed) > 0 {
		if dst, err = appendPackedSection(dst, m.Packed); err != nil {
			return dst, err
		}
	}
	if len(m.PullVersions) > 0 {
		if len(m.PullVersions) > maxFrameBody/8 {
			return dst, fmt.Errorf("transport: %d pull versions exceed the frame limit", len(m.PullVersions))
		}
		dst = append(dst, tagPullVersions)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.PullVersions)))
		for _, v := range m.PullVersions {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	}
	if m.ShardVersion != 0 {
		dst = append(dst, tagShardVersion)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.ShardVersion))
	}
	if m.Unchanged {
		dst = append(dst, tagUnchanged, 1)
	}
	if m.DeltaPull {
		dst = append(dst, tagDeltaPull, 1)
	}
	if len(m.Servers) > 0 {
		if dst, err = appendServersSection(dst, m.Servers); err != nil {
			return dst, err
		}
	}
	if m.MapVersion != 0 {
		dst = append(dst, tagMapVersion)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.MapVersion))
	}
	if m.Replica {
		dst = append(dst, tagReplica, 1)
	}
	if m.Cluster {
		dst = append(dst, tagCluster, 1)
	}
	if m.Relay {
		dst = append(dst, tagRelay, 1)
	}
	if len(m.PushEntries) > 0 {
		if len(m.PushEntries) > maxFrameBody/16 {
			return dst, fmt.Errorf("transport: %d push entries exceed the frame limit", len(m.PushEntries))
		}
		dst = append(dst, tagPushEntries)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.PushEntries)))
		for i, e := range m.PushEntries {
			if e.Worker < math.MinInt32 || e.Worker > math.MaxInt32 {
				return dst, fmt.Errorf("transport: push entry %d worker %d outside the wire's int32 range", i, e.Worker)
			}
			if e.Iteration < math.MinInt32 || e.Iteration > math.MaxInt32 {
				return dst, fmt.Errorf("transport: push entry %d iteration %d outside the wire's int32 range", i, e.Iteration)
			}
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(e.Worker)))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Version))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(e.Iteration)))
		}
	}
	return dst, nil
}

// appendServersSection appends the cluster-map section: a count followed by
// each entry's address (uint16 length + bytes) and its four range bounds as
// uint32 two's-complement int32 values.
func appendServersSection(dst []byte, entries []ServerEntry) ([]byte, error) {
	if len(entries) > maxFrameBody/18 {
		return dst, fmt.Errorf("transport: %d cluster-map entries exceed the frame limit", len(entries))
	}
	dst = append(dst, tagServers)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(entries)))
	for i, e := range entries {
		if len(e.Addr) > math.MaxUint16 {
			return dst, fmt.Errorf("transport: cluster-map entry %d address of %d bytes exceeds %d", i, len(e.Addr), math.MaxUint16)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Addr)))
		dst = append(dst, e.Addr...)
		for _, v := range [4]int{e.ShardLo, e.ShardHi, e.TensorLo, e.TensorHi} {
			if v < 0 || v > math.MaxInt32 {
				return dst, fmt.Errorf("transport: cluster-map entry %d range bound %d outside the wire's int32 range", i, v)
			}
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
		}
	}
	return dst, nil
}

// appendIntField appends a tagged uint32 field holding an int32
// two's-complement value, omitting zero.
func appendIntField(dst []byte, tag byte, v int, name string) ([]byte, error) {
	if v == 0 {
		return dst, nil
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return dst, fmt.Errorf("transport: field %s value %d outside the wire's int32 range", name, v)
	}
	dst = append(dst, tag)
	return binary.LittleEndian.AppendUint32(dst, uint32(int32(v))), nil
}

// appendTensorSection appends the dense-tensor section: a count followed by
// each tensor's rank, dimensions, element count, alignment padding, and raw
// float32 slab.
func appendTensorSection(dst []byte, bodyStart int, ts []WireTensor) ([]byte, error) {
	dst = append(dst, tagTensors)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ts)))
	for i, t := range ts {
		if len(t.Shape) > maxTensorDims {
			return dst, fmt.Errorf("transport: tensor %d has rank %d, wire limit is %d", i, len(t.Shape), maxTensorDims)
		}
		n := 1
		for _, d := range t.Shape {
			if d <= 0 || d > maxFrameBody {
				return dst, fmt.Errorf("transport: tensor %d has unencodable dimension %d", i, d)
			}
			n *= d
		}
		if n != len(t.Data) {
			return dst, fmt.Errorf("transport: tensor %d has %d values for shape %v", i, len(t.Data), t.Shape)
		}
		dst = append(dst, byte(len(t.Shape)))
		for _, d := range t.Shape {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
		// Pad so the slab starts 4-byte aligned relative to the body start,
		// letting the decoder alias it as []float32 directly.
		for (len(dst)-bodyStart)%4 != 0 {
			dst = append(dst, 0)
		}
		if hostLittleEndian {
			dst = append(dst, float32Bytes(t.Data)...)
		} else {
			for _, v := range t.Data {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
			}
		}
	}
	return dst, nil
}

// appendPackedSection appends the compressed-tensor section; the per-tensor
// layout is owned by compress.Packed.AppendBinary.
func appendPackedSection(dst []byte, ps []compress.Packed) ([]byte, error) {
	dst = append(dst, tagPacked)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ps)))
	for i, p := range ps {
		var err error
		if dst, err = p.AppendBinary(dst); err != nil {
			return dst, fmt.Errorf("transport: packed tensor %d: %w", i, err)
		}
	}
	return dst, nil
}

// --- Decoding ---------------------------------------------------------------

// frameReader holds the per-connection decode state reused across messages.
type frameReader struct {
	br *bufio.Reader
	// scratch is the reusable buffer for small (control-message) bodies.
	scratch []byte
	// frames counts successfully started reads, distinguishing the very
	// first frame (where a mismatch means a misconfigured peer, not
	// corruption) from mid-stream failures.
	frames int
	// lastSize is the on-wire size (header + body) of the last frame
	// readFrame decoded, for transport metering.
	lastSize int
}

// newFrameReader sizes the buffered reader for shard-chunk payloads: one
// reader per connection, reused for every message, large enough that a
// weights chunk streams through in big reads instead of per-message
// allocations or tiny kernel round trips.
func newFrameReader(r *bufio.Reader) *frameReader {
	return &frameReader{br: r, scratch: make([]byte, 0, smallBodyMax)}
}

// readFrame reads and decodes one frame. The returned message owns its
// payload: tensor data may alias a buffer that belongs to the message alone.
func (fr *frameReader) readFrame() (Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return Message{}, err
	}
	first := fr.frames == 0
	fr.frames++
	if string(hdr[:4]) != wireMagic {
		return Message{}, fmt.Errorf("%w: bad frame magic % x (want %q%s)", ErrWireMismatch, hdr[:4], wireMagic,
			mismatchHint(first))
	}
	version := hdr[4]
	if version < wireVersionMin || version > wireVersion {
		return Message{}, fmt.Errorf("%w: peer speaks binary wire protocol version %d, this side speaks %d-%d",
			ErrWireVersion, version, wireVersionMin, wireVersion)
	}
	typ := hdr[5]
	if typ == 0 {
		return Message{}, fmt.Errorf("transport: frame carries message type 0")
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Message{}, fmt.Errorf("transport: reserved header bytes % x are not zero", hdr[6:8])
	}
	// Validate as uint32 before converting: on a 32-bit platform a length
	// >= 2^31 would wrap int negative and slip past the limit check.
	declared := binary.LittleEndian.Uint32(hdr[8:])
	if declared > maxFrameBody {
		return Message{}, fmt.Errorf("transport: declared body of %d bytes exceeds the %d-byte limit", declared, maxFrameBody)
	}
	bodyLen := int(declared)
	fr.lastSize = headerSize + bodyLen

	var body []byte
	reused := false
	if bodyLen <= smallBodyMax {
		body = fr.scratch[:0]
		reused = true
	}
	body, err := readBody(fr.br, body, bodyLen)
	if err != nil {
		return Message{}, err
	}
	if reused {
		fr.scratch = body[:0]
	}

	m, err := parseBody(typ, version, body)
	if err != nil {
		return Message{}, err
	}
	if reused {
		// The scratch buffer is reused by the next Recv, so any payload
		// parsed out of it must be copied before the message escapes.
		// Control messages carry no payload, so this path never runs in the
		// steady state.
		m.copyPayloads()
	}
	m.ownedPayload = true
	return m, nil
}

// readBody reads exactly n bytes into (a possibly grown) dst. The buffer
// grows in bounded chunks as data actually arrives, so a forged length field
// cannot drive a huge up-front allocation.
func readBody(br *bufio.Reader, dst []byte, n int) ([]byte, error) {
	if cap(dst) < n {
		want := cap(dst)
		if want < bodyReadChunk {
			want = bodyReadChunk
		}
		if want > n {
			want = n
		}
		// Fresh buffer: allocations are at least pointer-aligned, keeping
		// 4-byte slab alignment guarantees intact.
		dst = make([]byte, 0, want)
	}
	for len(dst) < n {
		chunk := n - len(dst)
		if chunk > bodyReadChunk {
			chunk = bodyReadChunk
		}
		if cap(dst)-len(dst) < chunk {
			// Grow geometrically, capped at the declared length: the copy
			// cost stays linear in the body size, while capacity still only
			// ever doubles what has actually arrived — a forged length
			// cannot outrun real input by more than 2x plus one chunk.
			newCap := 2 * cap(dst)
			if newCap < len(dst)+chunk {
				newCap = len(dst) + chunk
			}
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, len(dst), newCap)
			copy(grown, dst)
			dst = grown
		}
		start := len(dst)
		dst = dst[:start+chunk]
		if _, err := io.ReadFull(br, dst[start:]); err != nil {
			return nil, fmt.Errorf("transport: body truncated at %d of %d bytes: %w", start, n, err)
		}
	}
	return dst, nil
}

// parseBody decodes the tagged fields of one frame body into a Message.
// WireTensor data and Packed payloads alias body. version is the frame
// header's protocol version: tags introduced after it are rejected, so a v1
// frame still decodes under exactly the v1 rules.
func parseBody(typ, version byte, body []byte) (Message, error) {
	m := Message{Type: MessageType(typ)}
	off := 0
	prevTag := 0
	for off < len(body) {
		tag := int(body[off])
		off++
		if tag <= prevTag {
			return Message{}, fmt.Errorf("transport: field tag 0x%02x out of order after 0x%02x", tag, prevTag)
		}
		if tag >= tagPullVersions && tag <= tagDeltaPull && version < 2 {
			return Message{}, fmt.Errorf("transport: decode %v frame: field tag 0x%02x requires protocol version 2 but the frame is version %d",
				MessageType(typ), tag, version)
		}
		if tag >= tagServers && tag <= tagCluster && version < 3 {
			return Message{}, fmt.Errorf("transport: decode %v frame: field tag 0x%02x requires protocol version 3 but the frame is version %d",
				MessageType(typ), tag, version)
		}
		if tag >= tagRelay && tag <= tagPushEntries && version < 4 {
			return Message{}, fmt.Errorf("transport: decode %v frame: field tag 0x%02x requires protocol version 4 but the frame is version %d",
				MessageType(typ), tag, version)
		}
		prevTag = tag
		var err error
		switch tag {
		case tagWorker:
			m.Worker, off, err = parseIntField(body, off)
		case tagIteration:
			m.Iteration, off, err = parseIntField(body, off)
		case tagVersion:
			if off+8 > len(body) {
				err = errTruncatedField
			} else {
				m.Version = int64(binary.LittleEndian.Uint64(body[off:]))
				off += 8
			}
		case tagShard:
			m.Shard, off, err = parseIntField(body, off)
		case tagShards:
			m.Shards, off, err = parseIntField(body, off)
		case tagBase:
			m.Base, off, err = parseIntField(body, off)
		case tagTotal:
			m.Total, off, err = parseIntField(body, off)
		case tagStoreShards:
			m.StoreShards, off, err = parseIntField(body, off)
		case tagCodec:
			if off >= len(body) || off+1+int(body[off]) > len(body) {
				err = errTruncatedField
			} else {
				n := int(body[off])
				m.Codec = string(body[off+1 : off+1+n])
				off += 1 + n
			}
		case tagCodecTopK:
			if off+8 > len(body) {
				err = errTruncatedField
			} else {
				m.CodecTopK = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
				off += 8
			}
		case tagCodecPull:
			if off >= len(body) {
				err = errTruncatedField
			} else if body[off] != 1 {
				err = fmt.Errorf("transport: CodecPull byte is %d, want 1", body[off])
			} else {
				m.CodecPull = true
				off++
			}
		case tagError:
			if off+4 > len(body) {
				err = errTruncatedField
			} else {
				// Compare against the remaining bytes rather than computing
				// off+4+n, which could overflow int on 32-bit platforms.
				n := int(binary.LittleEndian.Uint32(body[off:]))
				if n < 0 || n > len(body)-off-4 {
					err = errTruncatedField
				} else {
					m.Error = string(body[off+4 : off+4+n])
					off += 4 + n
				}
			}
		case tagTensors:
			m.Tensors, off, err = parseTensorSection(body, off)
		case tagPacked:
			m.Packed, off, err = parsePackedSection(body, off)
		case tagPullVersions:
			if off+4 > len(body) {
				err = errTruncatedField
			} else {
				n := int(binary.LittleEndian.Uint32(body[off:]))
				if n < 0 || n > (len(body)-off-4)/8 {
					err = fmt.Errorf("transport: %d pull versions cannot fit in %d remaining bytes", n, len(body)-off-4)
				} else {
					off += 4
					m.PullVersions = make([]int64, n)
					for i := range m.PullVersions {
						m.PullVersions[i] = int64(binary.LittleEndian.Uint64(body[off:]))
						off += 8
					}
				}
			}
		case tagShardVersion:
			if off+8 > len(body) {
				err = errTruncatedField
			} else {
				m.ShardVersion = int64(binary.LittleEndian.Uint64(body[off:]))
				off += 8
			}
		case tagUnchanged:
			if off >= len(body) {
				err = errTruncatedField
			} else if body[off] != 1 {
				err = fmt.Errorf("transport: Unchanged byte is %d, want 1", body[off])
			} else {
				m.Unchanged = true
				off++
			}
		case tagDeltaPull:
			if off >= len(body) {
				err = errTruncatedField
			} else if body[off] != 1 {
				err = fmt.Errorf("transport: DeltaPull byte is %d, want 1", body[off])
			} else {
				m.DeltaPull = true
				off++
			}
		case tagServers:
			m.Servers, off, err = parseServersSection(body, off)
		case tagMapVersion:
			if off+8 > len(body) {
				err = errTruncatedField
			} else {
				m.MapVersion = int64(binary.LittleEndian.Uint64(body[off:]))
				off += 8
			}
		case tagReplica:
			if off >= len(body) {
				err = errTruncatedField
			} else if body[off] != 1 {
				err = fmt.Errorf("transport: Replica byte is %d, want 1", body[off])
			} else {
				m.Replica = true
				off++
			}
		case tagCluster:
			if off >= len(body) {
				err = errTruncatedField
			} else if body[off] != 1 {
				err = fmt.Errorf("transport: Cluster byte is %d, want 1", body[off])
			} else {
				m.Cluster = true
				off++
			}
		case tagRelay:
			if off >= len(body) {
				err = errTruncatedField
			} else if body[off] != 1 {
				err = fmt.Errorf("transport: Relay byte is %d, want 1", body[off])
			} else {
				m.Relay = true
				off++
			}
		case tagPushEntries:
			if off+4 > len(body) {
				err = errTruncatedField
			} else {
				n := int(binary.LittleEndian.Uint32(body[off:]))
				if n < 0 || n > (len(body)-off-4)/16 {
					err = fmt.Errorf("transport: %d push entries cannot fit in %d remaining bytes", n, len(body)-off-4)
				} else {
					off += 4
					m.PushEntries = make([]PushEntry, n)
					for i := range m.PushEntries {
						m.PushEntries[i] = PushEntry{
							Worker:    int(int32(binary.LittleEndian.Uint32(body[off:]))),
							Version:   int64(binary.LittleEndian.Uint64(body[off+4:])),
							Iteration: int(int32(binary.LittleEndian.Uint32(body[off+12:]))),
						}
						off += 16
					}
				}
			}
		default:
			err = fmt.Errorf("transport: unknown field tag 0x%02x in a version-%d frame", tag, version)
		}
		if err != nil {
			return Message{}, fmt.Errorf("transport: decode %v frame: %w", MessageType(typ), err)
		}
	}
	return m, nil
}

var errTruncatedField = fmt.Errorf("field truncated")

// parseIntField decodes a uint32 field as a sign-extended int.
func parseIntField(body []byte, off int) (int, int, error) {
	if off+4 > len(body) {
		return 0, off, errTruncatedField
	}
	return int(int32(binary.LittleEndian.Uint32(body[off:]))), off + 4, nil
}

// parseTensorSection decodes the dense-tensor section. Each tensor's data
// aliases body when the host is little endian and the slab is 4-byte aligned
// (the encoder guarantees alignment, so conversion only runs on corrupt
// input or exotic hosts).
func parseTensorSection(body []byte, off int) ([]WireTensor, int, error) {
	if off+4 > len(body) {
		return nil, off, errTruncatedField
	}
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	// Minimum encoding per tensor: rank byte + element count + slab of at
	// least one aligned float32. Capping count against the bytes actually
	// present keeps a forged count from driving the slice allocation.
	if count < 0 || count > (len(body)-off)/9+1 {
		return nil, off, fmt.Errorf("tensor count %d cannot fit in %d remaining bytes", count, len(body)-off)
	}
	ts := make([]WireTensor, count)
	for i := range ts {
		if off >= len(body) {
			return nil, off, errTruncatedField
		}
		ndims := int(body[off])
		off++
		if ndims > maxTensorDims {
			return nil, off, fmt.Errorf("tensor %d has rank %d, wire limit is %d", i, ndims, maxTensorDims)
		}
		if off+4*ndims+4 > len(body) {
			return nil, off, errTruncatedField
		}
		shape := make([]int, ndims)
		n := 1
		for d := range shape {
			dim := int(binary.LittleEndian.Uint32(body[off:]))
			off += 4
			if dim <= 0 || n > maxFrameBody/4/dim {
				return nil, off, fmt.Errorf("tensor %d dimension %d overflows the frame limit", i, dim)
			}
			shape[d] = dim
			n *= dim
		}
		declared := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if declared != n {
			return nil, off, fmt.Errorf("tensor %d declares %d elements for shape %v (%d)", i, declared, shape, n)
		}
		for off%4 != 0 {
			if off >= len(body) || body[off] != 0 {
				return nil, off, fmt.Errorf("tensor %d has bad slab padding", i)
			}
			off++
		}
		if off+4*n > len(body) {
			return nil, off, errTruncatedField
		}
		slab := body[off : off+4*n]
		off += 4 * n
		var data []float32
		if hostLittleEndian && (n == 0 || uintptr(unsafe.Pointer(&slab[0]))%4 == 0) {
			data = bytesFloat32(slab, n)
		} else {
			data = make([]float32, n)
			for j := range data {
				data[j] = math.Float32frombits(binary.LittleEndian.Uint32(slab[4*j:]))
			}
		}
		ts[i] = WireTensor{Shape: shape, Data: data}
	}
	return ts, off, nil
}

// parsePackedSection decodes the compressed-tensor section; payload bytes
// alias body.
func parsePackedSection(body []byte, off int) ([]compress.Packed, int, error) {
	if off+4 > len(body) {
		return nil, off, errTruncatedField
	}
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if count < 0 || count > (len(body)-off)/compress.PackedBinaryMinSize+1 {
		return nil, off, fmt.Errorf("packed count %d cannot fit in %d remaining bytes", count, len(body)-off)
	}
	ps := make([]compress.Packed, count)
	for i := range ps {
		p, n, err := compress.DecodeBinary(body[off:])
		if err != nil {
			return nil, off, fmt.Errorf("packed tensor %d: %w", i, err)
		}
		ps[i] = p
		off += n
	}
	return ps, off, nil
}

// parseServersSection decodes the cluster-map section. Addresses are copied
// out of body (they are small strings, not payload slabs).
func parseServersSection(body []byte, off int) ([]ServerEntry, int, error) {
	if off+4 > len(body) {
		return nil, off, errTruncatedField
	}
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	// Minimum encoding per entry: uint16 address length + 4 range bounds.
	if count < 0 || count > (len(body)-off)/18+1 {
		return nil, off, fmt.Errorf("cluster-map count %d cannot fit in %d remaining bytes", count, len(body)-off)
	}
	entries := make([]ServerEntry, count)
	for i := range entries {
		if off+2 > len(body) {
			return nil, off, errTruncatedField
		}
		alen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+alen+16 > len(body) {
			return nil, off, errTruncatedField
		}
		addr := string(body[off : off+alen])
		off += alen
		var bounds [4]int
		for j := range bounds {
			bounds[j] = int(int32(binary.LittleEndian.Uint32(body[off:])))
			off += 4
			if bounds[j] < 0 {
				return nil, off, fmt.Errorf("cluster-map entry %d has negative range bound %d", i, bounds[j])
			}
		}
		entries[i] = ServerEntry{Addr: addr, ShardLo: bounds[0], ShardHi: bounds[1], TensorLo: bounds[2], TensorHi: bounds[3]}
	}
	return entries, off, nil
}

// mismatchHint explains a first-frame magic mismatch: the peer is almost
// certainly a gob-wire build, not a corrupted stream.
func mismatchHint(first bool) string {
	if first {
		return "; the peer may be speaking the legacy gob wire format — run both sides with the same -wire setting"
	}
	return ""
}

// --- The binary Conn --------------------------------------------------------

// binaryConn is a Conn over a TCP socket speaking the versioned binary frame
// protocol. Send assembles the frame into a reusable buffer and writes it
// with a single syscall; Recv reuses a buffered reader sized for shard
// chunks and a scratch buffer for control messages, so the steady-state
// protocol allocates only the payload buffers that messages alias and own.
// A mutex on each direction allows Send and Recv from different goroutines.
type binaryConn struct {
	conn net.Conn
	// server marks the accepting side, which answers a first-frame wire
	// mismatch in the legacy format so a misconfigured gob worker fails
	// fast instead of waiting forever for a reply it cannot parse.
	server bool
	// meter, when non-nil, counts frames and exact on-wire bytes per
	// message type and direction.
	meter *Metrics

	encMu  sync.Mutex
	encBuf []byte

	decMu sync.Mutex
	fr    *frameReader
}

// binaryReadBuffer sizes the per-connection read buffer: big enough that a
// typical weights shard chunk arrives in few reads, small enough to be
// irrelevant against the payloads themselves.
const binaryReadBuffer = 256 << 10

// maxRetainedEncBuf caps the encode buffer kept between sends: reuse makes
// the steady state allocation-free, but an occasional outsized batch (a
// multi-shard pull reply coalesced into one write) must not pin its
// high-water mark on the connection forever.
const maxRetainedEncBuf = 4 << 20

// retainEncBuf returns the buffer to keep for the next send: buf recycled
// when reasonable, nothing when it ballooned.
func retainEncBuf(buf []byte) []byte {
	if cap(buf) > maxRetainedEncBuf {
		return nil
	}
	return buf[:0]
}

// newBinaryConn wraps an established socket.
func newBinaryConn(c net.Conn, server bool) *binaryConn {
	return &binaryConn{
		conn:   c,
		server: server,
		fr:     newFrameReader(bufio.NewReaderSize(c, binaryReadBuffer)),
	}
}

// Send implements Conn. The frame is assembled in a reusable buffer and
// written with one Write call, so a sent message is never stranded in user
// space and steady-state sends allocate nothing.
func (c *binaryConn) Send(m Message) error {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	buf, err := appendFrame(c.encBuf[:0], &m)
	if err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Type, err)
	}
	c.encBuf = retainEncBuf(buf)
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Type, err)
	}
	c.meter.Sent(m.Type, len(buf))
	return nil
}

// SendBatch implements BatchSender: every frame is assembled back to back in
// the reusable buffer and the whole batch goes to the kernel in one Write,
// so releasing a barrier's worth of queued messages costs one syscall
// instead of one per message.
func (c *binaryConn) SendBatch(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	c.encMu.Lock()
	defer c.encMu.Unlock()
	buf := c.encBuf[:0]
	var err error
	var sizes []int
	if c.meter != nil {
		sizes = make([]int, len(ms))
	}
	for i := range ms {
		before := len(buf)
		if buf, err = appendFrame(buf, &ms[i]); err != nil {
			return fmt.Errorf("transport: send %v: %w", ms[i].Type, err)
		}
		if sizes != nil {
			sizes[i] = len(buf) - before
		}
	}
	c.encBuf = retainEncBuf(buf)
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("transport: send batch of %d: %w", len(ms), err)
	}
	if c.meter != nil {
		for i := range ms {
			c.meter.Sent(ms[i].Type, sizes[i])
		}
		c.meter.Batch(len(ms))
	}
	return nil
}

// Recv implements Conn.
func (c *binaryConn) Recv() (Message, error) {
	c.decMu.Lock()
	defer c.decMu.Unlock()
	first := c.fr.frames == 0
	m, err := c.fr.readFrame()
	if err != nil {
		switch {
		case c.server && first && errors.Is(err, ErrWireMismatch):
			// Answer in the legacy format: a gob worker that dialed a
			// binary server decodes this cleanly and reports it, instead of
			// hanging on a registration reply that will never come.
			c.sendLegacyError(fmt.Sprintf(
				"server speaks the binary wire protocol v%d; restart the worker with a matching -wire setting (%v)",
				wireVersion, err))
		case c.server && first && errors.Is(err, ErrWireVersion):
			// A binary peer at another version: answer with a v1 Error
			// frame — the header layout is fixed across versions precisely
			// so that a version-mismatch report stays decodable.
			c.encMu.Lock()
			writeBinaryError(c.conn, fmt.Sprintf(
				"%s: server speaks binary wire protocol version %d; %v", wireMismatchToken, wireVersion, err))
			c.encMu.Unlock()
		}
		if first && isConnClosed(err) {
			return Message{}, fmt.Errorf("transport: recv: connection closed before any frame arrived; "+
				"the server may be speaking a different wire format (-wire): %w", err)
		}
		return Message{}, fmt.Errorf("transport: recv: %w", err)
	}
	c.meter.Received(m.Type, c.fr.lastSize)
	return m, nil
}

// sendLegacyError writes one gob-encoded MsgError onto the socket,
// best-effort.
func (c *binaryConn) sendLegacyError(text string) {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	writeGobError(c.conn, text)
}

// Close implements Conn.
func (c *binaryConn) Close() error { return c.conn.Close() }

// SerializesOnSend marks the binary transport as a SerializingSender: Send
// and SendBatch assemble the full frame and hand it to the kernel before
// returning.
func (c *binaryConn) SerializesOnSend() {}

// isConnClosed reports whether err is a connection teardown rather than a
// parse failure.
func isConnClosed(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
}
