package transport

import (
	"io"

	"dssp/internal/obs"
)

// Metrics meters a transport endpoint: frames and bytes by message type
// and direction, and batch sizes for coalesced sends. Counters are
// resolved once at construction (message types are a small dense enum),
// so the per-frame cost is one or two atomic adds — no map lookups on the
// wire path. All methods are nil-safe: an unmetered connection carries a
// nil *Metrics and pays only a pointer test.
//
// Directions are from the owning process's point of view: "sent" is what
// this side wrote, "recv" what it read. The byte counts are exact frame
// sizes on the binary wire and exact stream consumption on gob; the
// in-process channel transport, which moves references rather than bytes,
// reports approximate payload sizes.
type Metrics struct {
	sentFrames, recvFrames [MsgPromote + 1]*obs.Counter
	sentBytes, recvBytes   [MsgPromote + 1]*obs.Counter
	otherSent, otherRecv   *obs.Counter // frames of unknown future types
	batch                  *obs.Histogram
}

// NewMetrics registers the transport metric families on reg and returns a
// meter. Per-type series are pre-created for every protocol message type
// so a scrape sees the full catalog (at zero) before traffic flows.
func NewMetrics(reg *obs.Registry) *Metrics {
	frames := reg.CounterVec("dssp_transport_frames_total",
		"Transport frames by direction and message type.", "dir", "type")
	bytes := reg.CounterVec("dssp_transport_bytes_total",
		"Transport payload bytes by direction and message type.", "dir", "type")
	m := &Metrics{
		batch: reg.Histogram("dssp_transport_batch_size",
			"Messages coalesced per batched send.", obs.SizeBuckets),
	}
	for t := MsgRegister; t <= MsgPromote; t++ {
		m.sentFrames[t] = frames.With("sent", t.String())
		m.recvFrames[t] = frames.With("recv", t.String())
		m.sentBytes[t] = bytes.With("sent", t.String())
		m.recvBytes[t] = bytes.With("recv", t.String())
	}
	m.otherSent = frames.With("sent", "Other")
	m.otherRecv = frames.With("recv", "Other")
	return m
}

// Sent records one outbound frame of n bytes.
func (m *Metrics) Sent(t MessageType, n int) {
	if m == nil {
		return
	}
	if t < MsgRegister || t > MsgPromote {
		m.otherSent.Inc()
		return
	}
	m.sentFrames[t].Inc()
	m.sentBytes[t].Add(uint64(n))
}

// Received records one inbound frame of n bytes.
func (m *Metrics) Received(t MessageType, n int) {
	if m == nil {
		return
	}
	if t < MsgRegister || t > MsgPromote {
		m.otherRecv.Inc()
		return
	}
	m.recvFrames[t].Inc()
	m.recvBytes[t].Add(uint64(n))
}

// Batch records one coalesced send of n messages.
func (m *Metrics) Batch(n int) {
	if m == nil {
		return
	}
	m.batch.Observe(float64(n))
}

// approxSize estimates a message's payload size for transports that never
// serialize (the in-process channel transport): tensor slabs, packed
// payloads, and a small fixed envelope.
func approxSize(m *Message) int {
	n := 64
	for i := range m.Tensors {
		n += 4 * len(m.Tensors[i].Data)
	}
	for i := range m.Packed {
		n += len(m.Packed[i].Payload)
	}
	return n
}

// meterWriter tracks bytes written through it. Access is serialized by
// the owning connection's direction mutex.
type meterWriter struct {
	w io.Writer
	n int64
}

func (c *meterWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// meterReader tracks bytes read through it, same discipline.
type meterReader struct {
	r io.Reader
	n int64
}

func (c *meterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
