package simulate

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"dssp/internal/core"
	"dssp/internal/metrics"
)

// RunConfig describes one simulated training run.
type RunConfig struct {
	// Model is the architecture being trained.
	Model ModelProfile
	// Cluster is the hardware the run executes on.
	Cluster ClusterSpec
	// Policy selects the synchronization paradigm. Workers is filled in from
	// the cluster automatically.
	Policy core.PolicyConfig
	// IterationsPerWorker is how many mini-batches each worker processes.
	IterationsPerWorker int
	// Events schedules mid-run perturbations: crashes, rejoins, delay
	// shifts and adversary toggles (see Event). It subsumes Failures.
	Events []Event
	// Failures schedules worker crashes during the run.
	//
	// Deprecated: Failures is the crash-only predecessor of Events; each
	// entry behaves exactly like Crash(f.Worker, f.At). Both fields may be
	// set; their events merge.
	Failures []WorkerFailure
	// Links assigns Markov-modulated delay models to worker links (see
	// LinkModel and the Link* presets). Workers absent from the map have
	// calm links.
	Links map[int]LinkModel
	// Adversaries assigns initial clock-level Byzantine behaviours to
	// workers (toggled mid-run by EventAdversary).
	Adversaries map[int]AdversaryKind
	// Guard enables the simulated server's anomaly guard: flagged pushes
	// are dropped and repeat offenders evicted, mirroring the real
	// server's GuardConfig.
	Guard GuardSpec
	// Fanout, when >= 2, interposes the aggregation-relay tier (DESIGN.md
	// §11): relay r fronts workers [r*Fanout, (r+1)*Fanout), sums their
	// pushes into one partial and forwards a single frame to the root, so
	// the root link carries O(workers/Fanout) frames per round instead of
	// O(workers). Child hops ride per-relay links; only relay frames
	// contend on the root link. 0 or 1 means flat. Mirroring the real
	// server's relay admission, Fanout >= 2 is incompatible with Guard.
	Fanout int
	// RelayFlush bounds how long a relay partial waits for straggling
	// group members before forwarding incomplete, mirroring the real
	// relay's watchdog; 0 picks the default 50ms
	// (ps.DefaultRelayFlushInterval). Only meaningful with Fanout >= 2.
	RelayFlush time.Duration
	// Seed drives compute-time jitter.
	Seed int64
}

// WorkerFailure is a scheduled crash: at time At the worker stops computing,
// its in-flight push (if any) is lost, and the policy is told it left. A
// failure scheduled after the worker already finished is ignored.
type WorkerFailure struct {
	// Worker is the crashing worker's ID.
	Worker int
	// At is the elapsed simulated time of the crash.
	At time.Duration
}

// UpdateEvent records one gradient update applied to the global weights.
type UpdateEvent struct {
	// At is the elapsed simulated time of the update.
	At time.Duration
	// Worker identifies the pushing worker.
	Worker int
	// Staleness is the number of updates applied between the worker's pull
	// and this update.
	Staleness int
}

// RunResult is the outcome of one simulated run.
type RunResult struct {
	// Label is the paradigm description.
	Label string
	// Updates lists every applied update in time order.
	Updates []UpdateEvent
	// Finish is when the last worker completed its final iteration.
	Finish time.Duration
	// Waits is the total synchronization waiting time per worker.
	Waits []time.Duration
	// Staleness summarizes the update staleness distribution.
	Staleness *metrics.Histogram
	// DroppedUpdates counts pushes discarded by the policy (backup workers).
	DroppedUpdates int
	// GuardDropped counts pushes rejected by the anomaly guard (zero
	// unless RunConfig.Guard is enabled).
	GuardDropped int
	// Flags is the guard's per-worker anomaly count.
	Flags []int
	// Evicted lists workers the guard evicted, in eviction order.
	Evicted []int
	// Rejoins counts workers brought back by EventRejoin.
	Rejoins int
	// RootIngressFrames counts push frames arriving at the root: one per
	// worker push when flat, one per forwarded relay partial under
	// RunConfig.Fanout >= 2.
	RootIngressFrames int
	// RootIngressBytes is the gradient payload carried by those frames (a
	// summed partial is one model-sized gradient regardless of how many
	// pushes it folds).
	RootIngressBytes int
	// Bounded reports whether the paradigm guarantees any staleness bound
	// (every paradigm except ASP).
	Bounded bool
}

// MeanStaleness returns the average staleness over all applied updates.
func (r *RunResult) MeanStaleness() float64 { return r.Staleness.Mean() }

// Throughput returns applied updates per second of simulated time.
func (r *RunResult) Throughput() float64 {
	if r.Finish <= 0 {
		return 0
	}
	return float64(len(r.Updates)) / r.Finish.Seconds()
}

// TotalWait returns the summed synchronization waiting time of all workers.
func (r *RunResult) TotalWait() time.Duration {
	var total time.Duration
	for _, w := range r.Waits {
		total += w
	}
	return total
}

// Event kinds used by the simulator.
type eventKind int

const (
	// evComputeDone fires when a worker finishes computing its mini-batch
	// gradient and is ready to push.
	evComputeDone eventKind = iota + 1
	// evPushArrive fires when the pushed gradient has fully arrived at the
	// server.
	evPushArrive
	// evPullDone fires when a released worker has finished pulling the
	// fresh global weights.
	evPullDone
	// evFail fires when a worker crashes (EventCrash / RunConfig.Failures).
	evFail
	// evRejoin fires when a crashed worker comes back (EventRejoin).
	evRejoin
	// evDelayShift rescales a worker's compute time (EventDelayShift).
	evDelayShift
	// evAdversary switches a worker's adversary behaviour (EventAdversary).
	evAdversary
	// evRelayIngress fires when a push has fully arrived at the worker's
	// relay (RunConfig.Fanout >= 2).
	evRelayIngress
	// evRelayArrive fires when a forwarded relay partial has fully arrived
	// at the root.
	evRelayArrive
	// evRelayFlush is a relay's watchdog: it forwards a partial that has
	// waited RelayFlush for straggling group members.
	evRelayFlush
)

// event is one entry of the simulation's time-ordered queue.
type event struct {
	at     time.Duration
	seq    int
	kind   eventKind
	worker int
	// extra marks a flood adversary's surplus pushes: they traverse the
	// full push path but do not consume the worker's iteration budget.
	extra bool
	// factor carries the delay-shift multiplier.
	factor float64
	// adversary carries the behaviour an evAdversary event installs.
	adversary AdversaryKind
	// batch lists the logical pushes folded into a relay frame
	// (evRelayArrive), in arrival order at the relay.
	batch []int
	// gen is the partial generation an evRelayFlush watchdog was armed
	// for; a stale generation means the partial already flushed.
	gen int
}

// eventQueue is a min-heap of events ordered by time then insertion order.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// simulation carries the mutable state of one run.
type simulation struct {
	cfg        RunConfig
	policy     core.Policy
	aggregated bool
	rng        *rand.Rand

	transfer  time.Duration
	applyCost time.Duration
	keyCost   time.Duration

	queue *eventQueue
	seq   int

	remaining     []int
	baseVersion   []int
	pushArrivedAt []time.Duration
	waiting       []bool
	failed        []bool
	finishedAt    []time.Duration
	version       int

	// speedScale multiplies each worker's compute time (EventDelayShift).
	speedScale []float64
	// links is the per-worker Markov link state.
	links []linkState
	// adversary is each worker's current behaviour.
	adversary []AdversaryKind

	// Guard state (nil monitor when the guard is disabled).
	guardCfg GuardSpec
	monitor  *core.ClockMonitor
	strikes  []int

	// Relay tier state (Fanout >= 2): worker grouping, per-relay child
	// links, and each relay's pending partial.
	fanout          int
	relayFlush      time.Duration
	groupOf         []int
	groups          [][]int
	relayLinkFreeAt []time.Duration
	partials        []relayPartialSim

	linkFreeAt time.Duration
	cpuFreeAt  time.Duration

	result *RunResult
}

// relayPartialSim is one relay's windowed partial: the pushes summed so far
// and a generation counter that invalidates armed watchdogs on flush.
type relayPartialSim struct {
	entries []int
	member  map[int]bool
	gen     int
}

// defaultRelayFlush mirrors ps.DefaultRelayFlushInterval.
const defaultRelayFlush = 50 * time.Millisecond

// Run executes one simulated training run.
func Run(cfg RunConfig) (*RunResult, error) {
	workers := cfg.Cluster.NumWorkers()
	if workers == 0 {
		return nil, fmt.Errorf("simulate: cluster has no workers")
	}
	if cfg.IterationsPerWorker <= 0 {
		return nil, fmt.Errorf("simulate: iterations per worker must be positive, got %d", cfg.IterationsPerWorker)
	}
	if cfg.Cluster.LinkBandwidth <= 0 || cfg.Cluster.ApplyRate <= 0 {
		return nil, fmt.Errorf("simulate: cluster bandwidth and apply rate must be positive")
	}
	if cfg.Fanout < 0 {
		return nil, fmt.Errorf("simulate: fanout must be >= 0, got %d", cfg.Fanout)
	}
	if cfg.Fanout >= 2 && cfg.Guard.Enabled {
		// The guard screens per-worker clocks on raw ingress; a summed
		// partial hides them. The real root rejects relay trunks the same
		// way (relayAdmissible).
		return nil, fmt.Errorf("simulate: the anomaly guard cannot screen relayed partials; disable Guard or run flat")
	}
	cfg.Policy.Workers = workers
	policy, err := core.NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}

	sim := &simulation{
		cfg:    cfg,
		policy: policy,
		// Synchronous paradigms aggregate the round's gradients into a single
		// server-side update; asynchronous ones pay the apply and per-key
		// cost on every push.
		aggregated: cfg.Policy.Paradigm == core.ParadigmBSP || cfg.Policy.Paradigm == core.ParadigmBackupBSP,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		transfer: cfg.Cluster.LinkLatency +
			time.Duration(float64(cfg.Model.Bytes())/cfg.Cluster.LinkBandwidth*float64(time.Second)),
		applyCost: time.Duration(float64(cfg.Model.Params) / cfg.Cluster.ApplyRate * float64(time.Second)),
		keyCost:   time.Duration(cfg.Model.Layers) * cfg.Cluster.PerKeyOverhead,
		queue:     &eventQueue{},

		remaining:     make([]int, workers),
		baseVersion:   make([]int, workers),
		pushArrivedAt: make([]time.Duration, workers),
		waiting:       make([]bool, workers),
		failed:        make([]bool, workers),
		finishedAt:    make([]time.Duration, workers),

		result: &RunResult{
			Label:     cfg.Policy.Describe(),
			Waits:     make([]time.Duration, workers),
			Staleness: metrics.NewHistogram(),
		},
	}
	_, sim.result.Bounded = policy.(core.StalenessBounder)

	sim.speedScale = make([]float64, workers)
	sim.links = make([]linkState, workers)
	sim.adversary = make([]AdversaryKind, workers)
	for w := 0; w < workers; w++ {
		sim.speedScale[w] = 1
		sim.links[w] = newLinkState(cfg.Links[w])
		sim.adversary[w] = cfg.Adversaries[w]
	}
	if cfg.Fanout >= 2 {
		sim.fanout = cfg.Fanout
		sim.relayFlush = cfg.RelayFlush
		if sim.relayFlush <= 0 {
			sim.relayFlush = defaultRelayFlush
		}
		sim.groupOf = make([]int, workers)
		for w := 0; w < workers; w++ {
			g := w / cfg.Fanout
			sim.groupOf[w] = g
			for g >= len(sim.groups) {
				sim.groups = append(sim.groups, nil)
			}
			sim.groups[g] = append(sim.groups[g], w)
		}
		sim.relayLinkFreeAt = make([]time.Duration, len(sim.groups))
		sim.partials = make([]relayPartialSim, len(sim.groups))
		for g := range sim.partials {
			sim.partials[g].member = make(map[int]bool, cfg.Fanout)
		}
	}
	sim.guardCfg = cfg.Guard.normalized()
	if sim.guardCfg.Enabled {
		sim.monitor = core.NewClockMonitor(workers, sim.guardCfg.FloodSlack)
		sim.strikes = make([]int, workers)
		sim.result.Flags = make([]int, workers)
	}

	events := make([]Event, 0, len(cfg.Events)+len(cfg.Failures))
	events = append(events, cfg.Events...)
	for _, f := range cfg.Failures {
		events = append(events, Crash(f.Worker, f.At))
	}
	for _, e := range events {
		if err := e.validate(workers); err != nil {
			return nil, err
		}
		switch e.Kind {
		case EventCrash:
			sim.schedule(e.At, evFail, e.Worker)
		case EventRejoin:
			sim.scheduleEvent(event{at: e.At, kind: evRejoin, worker: e.Worker})
		case EventDelayShift:
			sim.scheduleEvent(event{at: e.At, kind: evDelayShift, worker: e.Worker, factor: e.Factor})
		case EventAdversary:
			sim.scheduleEvent(event{at: e.At, kind: evAdversary, worker: e.Worker, adversary: e.Adversary})
		}
	}
	for w := 0; w < workers; w++ {
		sim.remaining[w] = cfg.IterationsPerWorker
		sim.schedule(sim.computeTime(w), evComputeDone, w)
	}
	sim.run()

	for _, at := range sim.finishedAt {
		if at > sim.result.Finish {
			sim.result.Finish = at
		}
	}
	return sim.result, nil
}

// schedule enqueues an event.
func (s *simulation) schedule(at time.Duration, kind eventKind, worker int) {
	s.scheduleEvent(event{at: at, kind: kind, worker: worker})
}

// scheduleEvent enqueues a fully specified event.
func (s *simulation) scheduleEvent(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(s.queue, ev)
}

// computeTime samples one mini-batch duration for the given worker.
func (s *simulation) computeTime(w int) time.Duration {
	mean := float64(s.cfg.Model.ComputeTime) / s.cfg.Cluster.Workers[w].Speed * s.speedScale[w]
	jitter := 1 + s.cfg.Cluster.ComputeJitter*s.rng.NormFloat64()
	if jitter < 0.3 {
		jitter = 0.3
	}
	return time.Duration(mean * jitter)
}

// acquire reserves a FIFO shared resource starting no earlier than now and
// returns the completion time.
func acquire(freeAt *time.Duration, now, cost time.Duration) time.Duration {
	start := now
	if *freeAt > start {
		start = *freeAt
	}
	end := start + cost
	*freeAt = end
	return end
}

// run drains the event queue. Events of a crashed worker are discarded —
// its in-flight push or pull died with it — except rejoins and state
// changes, which must survive the crash to take effect afterwards.
func (s *simulation) run() {
	for s.queue.Len() > 0 {
		ev := heap.Pop(s.queue).(event)
		// Relay frames and watchdogs belong to the relay, not the worker
		// whose id labels them: a member's crash must not discard them.
		relayOwned := ev.kind == evRelayArrive || ev.kind == evRelayFlush
		if s.failed[ev.worker] && !relayOwned && ev.kind != evRejoin && ev.kind != evDelayShift && ev.kind != evAdversary {
			continue
		}
		switch ev.kind {
		case evComputeDone:
			s.onComputeDone(ev)
		case evPushArrive:
			s.onPushArrive(ev)
		case evPullDone:
			s.onPullDone(ev)
		case evFail:
			s.onFail(ev)
		case evRejoin:
			s.onRejoin(ev)
		case evDelayShift:
			s.speedScale[ev.worker] = ev.factor
		case evAdversary:
			s.adversary[ev.worker] = ev.adversary
		case evRelayIngress:
			s.onRelayIngress(ev)
		case evRelayArrive:
			s.onRelayArrive(ev)
		case evRelayFlush:
			s.onRelayFlush(ev)
		}
	}
}

// effectiveTransfer returns worker w's transfer cost on the critical path at
// time now: barrier paradigms pay it in full, asynchronous-like paradigms
// hide CommOverlap of it behind computation, and the worker's link model
// (if any) scales the result by its current Markov state.
func (s *simulation) effectiveTransfer(w int, now time.Duration) time.Duration {
	return time.Duration(float64(s.baseTransfer()) * s.links[w].multiplier(now, s.rng))
}

// baseTransfer is the overlap-adjusted transfer cost before any per-worker
// link degradation — what a relay's trunk (a calm datacenter link) pays.
func (s *simulation) baseTransfer() time.Duration {
	base := s.transfer
	if !s.aggregated {
		overlap := s.cfg.Cluster.CommOverlap
		if overlap < 0 {
			overlap = 0
		}
		if overlap > 1 {
			overlap = 1
		}
		base = time.Duration(float64(s.transfer) * (1 - overlap))
	}
	return base
}

// onComputeDone sends the worker's gradient to the server over the shared
// link. A flood adversary emits floodBurst copies back to back; only the
// first consumes the worker's iteration budget.
func (s *simulation) onComputeDone(ev event) {
	// Under the relay tier the push rides the relay's child link instead of
	// contending on the root's — that contention shift is the tier's point.
	link := &s.linkFreeAt
	kind := evPushArrive
	if s.fanout >= 2 {
		link = &s.relayLinkFreeAt[s.groupOf[ev.worker]]
		kind = evRelayIngress
	}
	arrival := acquire(link, ev.at, s.effectiveTransfer(ev.worker, ev.at))
	s.scheduleEvent(event{at: arrival, kind: kind, worker: ev.worker})
	if s.adversary[ev.worker] == AdversaryPushFlood {
		for i := 1; i < floodBurst; i++ {
			arrival = acquire(link, arrival, s.effectiveTransfer(ev.worker, arrival))
			s.scheduleEvent(event{at: arrival, kind: kind, worker: ev.worker, extra: true})
		}
	}
}

// onPushArrive screens the push through the guard (if enabled), applies the
// update (unless dropped), consults the policy, and starts the pull transfer
// of every released worker. Mirroring the real server, an evicting push
// never reaches the policy's OnPush — the worker leaves instead.
func (s *simulation) onPushArrive(ev event) {
	w := ev.worker
	s.result.RootIngressFrames++
	s.result.RootIngressBytes += s.cfg.Model.Bytes()
	if !ev.extra {
		s.remaining[w]--
		s.pushArrivedAt[w] = ev.at
		s.waiting[w] = true
	}

	guardDrop := false
	if s.monitor != nil {
		claimed := int64(s.baseVersion[w])
		if s.adversary[w] == AdversaryLyingClock {
			claimed = int64(s.version) + lieAhead
		}
		flags := len(s.monitor.ObservePush(core.WorkerID(w), claimed, int64(s.version)))
		if flags > 0 {
			s.result.Flags[w] += flags
			s.strikes[w] += flags
			s.result.GuardDropped++
			guardDrop = true
			if s.strikes[w] >= s.guardCfg.MaxStrikes {
				s.result.Evicted = append(s.result.Evicted, w)
				s.crashWorker(w, ev.at)
				return
			}
		}
	}

	decision := s.policy.OnPush(core.WorkerID(w), time.Unix(0, 0).Add(ev.at))

	readyAt := ev.at
	if guardDrop {
		// Dropped by the guard; the policy's releases still flow so
		// barrier paradigms never deadlock on a rejected payload.
	} else if decision.Drop {
		s.result.DroppedUpdates++
	} else {
		staleness := s.version - s.baseVersion[w]
		s.version++
		s.result.Staleness.Observe(staleness)
		s.result.Updates = append(s.result.Updates, UpdateEvent{At: ev.at, Worker: w, Staleness: staleness})

		// Server CPU cost: per-push for asynchronous paradigms, once per
		// barrier round for aggregating ones.
		cost := time.Duration(0)
		if s.aggregated {
			if len(decision.Release) > 0 {
				cost = s.applyCost + s.keyCost
			}
		} else {
			cost = s.applyCost + s.keyCost
		}
		if cost > 0 {
			readyAt = acquire(&s.cpuFreeAt, ev.at, cost)
		}
	}

	s.releaseWorkers(decision.Release, readyAt)
}

// doneFor reports whether a worker has completed its course: no iterations
// left and no push awaiting release. A relay partial never waits on it.
func (s *simulation) doneFor(w int) bool { return s.remaining[w] <= 0 && !s.waiting[w] }

// relayComplete reports whether relay g's partial holds a contribution from
// every group member still expected to push — the real relay's "full" flush
// condition.
func (s *simulation) relayComplete(g int) bool {
	p := &s.partials[g]
	if len(p.entries) == 0 {
		return false
	}
	for _, w := range s.groups[g] {
		if s.failed[w] || s.doneFor(w) {
			continue
		}
		if !p.member[w] {
			return false
		}
	}
	return true
}

// flushRelay forwards relay g's pending partial to the root as one frame on
// the root link, and invalidates any armed watchdog via the generation bump.
func (s *simulation) flushRelay(g int, at time.Duration) {
	p := &s.partials[g]
	if len(p.entries) == 0 {
		return
	}
	batch := p.entries
	p.entries = nil
	p.member = make(map[int]bool, s.fanout)
	p.gen++
	arrival := acquire(&s.linkFreeAt, at, s.baseTransfer())
	s.scheduleEvent(event{at: arrival, kind: evRelayArrive, worker: batch[0], batch: batch})
}

// onRelayIngress folds an arrived push into its relay's partial. A duplicate
// contribution flushes the open window first (the worker has lapped its
// peers); a partial covering every expected member flushes immediately.
func (s *simulation) onRelayIngress(ev event) {
	w := ev.worker
	g := s.groupOf[w]
	if !ev.extra {
		s.remaining[w]--
		s.pushArrivedAt[w] = ev.at
		s.waiting[w] = true
	}
	p := &s.partials[g]
	if p.member[w] {
		s.flushRelay(g, ev.at)
	}
	if len(p.entries) == 0 {
		// First entry of a fresh partial: arm the straggler watchdog.
		s.scheduleEvent(event{at: ev.at + s.relayFlush, kind: evRelayFlush, worker: w, gen: p.gen})
	}
	p.entries = append(p.entries, w)
	p.member[w] = true
	if s.relayComplete(g) {
		s.flushRelay(g, ev.at)
	}
}

// onRelayFlush is the armed watchdog firing: if the partial it was armed for
// is still open, straggling members have held it past RelayFlush — forward
// it incomplete, exactly like the real relay.
func (s *simulation) onRelayFlush(ev event) {
	g := s.groupOf[ev.worker]
	if s.partials[g].gen == ev.gen {
		s.flushRelay(g, ev.at)
	}
}

// onRelayArrive processes one forwarded partial at the root: a single frame
// of ingress whose embedded entries each reach the policy as a logical push,
// applied as one weighted update — version advances by the batch size.
func (s *simulation) onRelayArrive(ev event) {
	s.result.RootIngressFrames++
	s.result.RootIngressBytes += s.cfg.Model.Bytes()
	applied := false
	var release []core.WorkerID
	for _, w := range ev.batch {
		if s.failed[w] {
			// The member died after contributing; its summed share cannot
			// be subtracted, but its policy clock already left on OnLeave.
			s.result.DroppedUpdates++
			continue
		}
		decision := s.policy.OnPush(core.WorkerID(w), time.Unix(0, 0).Add(ev.at))
		if decision.Drop {
			s.result.DroppedUpdates++
		} else {
			staleness := s.version - s.baseVersion[w]
			s.version++
			s.result.Staleness.Observe(staleness)
			s.result.Updates = append(s.result.Updates, UpdateEvent{At: ev.at, Worker: w, Staleness: staleness})
			applied = true
		}
		release = append(release, decision.Release...)
	}
	readyAt := ev.at
	if applied {
		// One weighted apply per frame, however many pushes it folds —
		// the relay already paid the summing.
		readyAt = acquire(&s.cpuFreeAt, ev.at, s.applyCost+s.keyCost)
	}
	s.releaseWorkers(release, readyAt)
}

// onFail crashes a worker: it stops computing, any queued events for it are
// discarded by run, and the policy is told it left so that peers blocked on
// it are re-evaluated — exactly what the real server does when a connection
// dies or a lease expires. The worker's remaining iteration budget is
// preserved so an EventRejoin can resume it.
func (s *simulation) onFail(ev event) {
	w := ev.worker
	if s.remaining[w] <= 0 && !s.waiting[w] {
		// Already finished; the crash is moot.
		return
	}
	s.crashWorker(w, ev.at)
}

// crashWorker marks a worker dead (crash or guard eviction) and tells the
// policy it left.
func (s *simulation) crashWorker(w int, at time.Duration) {
	s.failed[w] = true
	s.waiting[w] = false
	s.finishedAt[w] = at
	decision := s.policy.OnLeave(core.WorkerID(w), time.Unix(0, 0).Add(at))
	s.releaseWorkers(decision.Release, at)
	if s.fanout >= 2 {
		// The relay flushes on a member's departure (its share is already
		// summed in), and a partial that was only waiting on the dead
		// worker is now complete.
		g := s.groupOf[w]
		if s.partials[g].member[w] || s.relayComplete(g) {
			s.flushRelay(g, at)
		}
	}
}

// onRejoin resurrects a crashed worker: the policy admits it back, it pulls
// fresh weights and resumes its remaining iterations.
func (s *simulation) onRejoin(ev event) {
	w := ev.worker
	if !s.failed[w] || s.remaining[w] <= 0 {
		return
	}
	s.failed[w] = false
	s.finishedAt[w] = 0
	s.result.Rejoins++
	decision := s.policy.OnJoin(core.WorkerID(w), time.Unix(0, 0).Add(ev.at))
	s.releaseWorkers(decision.Release, ev.at)
	if s.monitor != nil {
		s.monitor.ObservePull(core.WorkerID(w))
	}
	pullDone := acquire(s.pullLink(w), ev.at, s.effectiveTransfer(w, ev.at))
	s.baseVersion[w] = s.version
	s.schedule(pullDone, evPullDone, w)
}

// pullLink is the link a worker's pull rides: the root's when flat, its
// relay's child link under the aggregation tier.
func (s *simulation) pullLink(w int) *time.Duration {
	if s.fanout >= 2 {
		return &s.relayLinkFreeAt[s.groupOf[w]]
	}
	return &s.linkFreeAt
}

// releaseWorkers processes a policy release list: waiting workers resume
// (pull then compute) or finish, and their synchronization wait is recorded.
func (s *simulation) releaseWorkers(release []core.WorkerID, readyAt time.Duration) {
	for _, id := range release {
		r := int(id)
		if !s.waiting[r] || s.failed[r] {
			continue
		}
		s.waiting[r] = false
		releaseAt := readyAt
		if s.pushArrivedAt[r] > releaseAt {
			releaseAt = s.pushArrivedAt[r]
		}
		s.result.Waits[r] += releaseAt - s.pushArrivedAt[r]

		if s.remaining[r] <= 0 {
			// The worker has pushed its final gradient; it only needed the
			// release to know the round completed. Mirroring the real
			// server (Done then session close), it leaves the policy's
			// accounting so laggards are not held to its frozen clock.
			s.finishedAt[r] = releaseAt
			d := s.policy.OnLeave(core.WorkerID(r), time.Unix(0, 0).Add(releaseAt))
			s.releaseWorkers(d.Release, releaseAt)
			if s.fanout >= 2 && s.relayComplete(s.groupOf[r]) {
				// Its relay no longer expects it; a partial waiting only
				// on this worker is complete now.
				s.flushRelay(s.groupOf[r], releaseAt)
			}
			continue
		}
		// Pull the fresh weights over the shared link (the relay's child
		// link under the tier — pulls pass through the relay's cache).
		if s.monitor != nil {
			s.monitor.ObservePull(core.WorkerID(r))
		}
		pullDone := acquire(s.pullLink(r), releaseAt, s.effectiveTransfer(r, releaseAt))
		s.baseVersion[r] = s.version
		s.schedule(pullDone, evPullDone, r)
	}
}

// onPullDone starts the worker's next compute phase.
func (s *simulation) onPullDone(ev event) {
	s.schedule(ev.at+s.computeTime(ev.worker), evComputeDone, ev.worker)
}
