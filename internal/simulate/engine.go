package simulate

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"dssp/internal/core"
	"dssp/internal/metrics"
)

// RunConfig describes one simulated training run.
type RunConfig struct {
	// Model is the architecture being trained.
	Model ModelProfile
	// Cluster is the hardware the run executes on.
	Cluster ClusterSpec
	// Policy selects the synchronization paradigm. Workers is filled in from
	// the cluster automatically.
	Policy core.PolicyConfig
	// IterationsPerWorker is how many mini-batches each worker processes.
	IterationsPerWorker int
	// Events schedules mid-run perturbations: crashes, rejoins, delay
	// shifts and adversary toggles (see Event). It subsumes Failures.
	Events []Event
	// Failures schedules worker crashes during the run.
	//
	// Deprecated: Failures is the crash-only predecessor of Events; each
	// entry behaves exactly like Crash(f.Worker, f.At). Both fields may be
	// set; their events merge.
	Failures []WorkerFailure
	// Links assigns Markov-modulated delay models to worker links (see
	// LinkModel and the Link* presets). Workers absent from the map have
	// calm links.
	Links map[int]LinkModel
	// Adversaries assigns initial clock-level Byzantine behaviours to
	// workers (toggled mid-run by EventAdversary).
	Adversaries map[int]AdversaryKind
	// Guard enables the simulated server's anomaly guard: flagged pushes
	// are dropped and repeat offenders evicted, mirroring the real
	// server's GuardConfig.
	Guard GuardSpec
	// Seed drives compute-time jitter.
	Seed int64
}

// WorkerFailure is a scheduled crash: at time At the worker stops computing,
// its in-flight push (if any) is lost, and the policy is told it left. A
// failure scheduled after the worker already finished is ignored.
type WorkerFailure struct {
	// Worker is the crashing worker's ID.
	Worker int
	// At is the elapsed simulated time of the crash.
	At time.Duration
}

// UpdateEvent records one gradient update applied to the global weights.
type UpdateEvent struct {
	// At is the elapsed simulated time of the update.
	At time.Duration
	// Worker identifies the pushing worker.
	Worker int
	// Staleness is the number of updates applied between the worker's pull
	// and this update.
	Staleness int
}

// RunResult is the outcome of one simulated run.
type RunResult struct {
	// Label is the paradigm description.
	Label string
	// Updates lists every applied update in time order.
	Updates []UpdateEvent
	// Finish is when the last worker completed its final iteration.
	Finish time.Duration
	// Waits is the total synchronization waiting time per worker.
	Waits []time.Duration
	// Staleness summarizes the update staleness distribution.
	Staleness *metrics.Histogram
	// DroppedUpdates counts pushes discarded by the policy (backup workers).
	DroppedUpdates int
	// GuardDropped counts pushes rejected by the anomaly guard (zero
	// unless RunConfig.Guard is enabled).
	GuardDropped int
	// Flags is the guard's per-worker anomaly count.
	Flags []int
	// Evicted lists workers the guard evicted, in eviction order.
	Evicted []int
	// Rejoins counts workers brought back by EventRejoin.
	Rejoins int
	// Bounded reports whether the paradigm guarantees any staleness bound
	// (every paradigm except ASP).
	Bounded bool
}

// MeanStaleness returns the average staleness over all applied updates.
func (r *RunResult) MeanStaleness() float64 { return r.Staleness.Mean() }

// Throughput returns applied updates per second of simulated time.
func (r *RunResult) Throughput() float64 {
	if r.Finish <= 0 {
		return 0
	}
	return float64(len(r.Updates)) / r.Finish.Seconds()
}

// TotalWait returns the summed synchronization waiting time of all workers.
func (r *RunResult) TotalWait() time.Duration {
	var total time.Duration
	for _, w := range r.Waits {
		total += w
	}
	return total
}

// Event kinds used by the simulator.
type eventKind int

const (
	// evComputeDone fires when a worker finishes computing its mini-batch
	// gradient and is ready to push.
	evComputeDone eventKind = iota + 1
	// evPushArrive fires when the pushed gradient has fully arrived at the
	// server.
	evPushArrive
	// evPullDone fires when a released worker has finished pulling the
	// fresh global weights.
	evPullDone
	// evFail fires when a worker crashes (EventCrash / RunConfig.Failures).
	evFail
	// evRejoin fires when a crashed worker comes back (EventRejoin).
	evRejoin
	// evDelayShift rescales a worker's compute time (EventDelayShift).
	evDelayShift
	// evAdversary switches a worker's adversary behaviour (EventAdversary).
	evAdversary
)

// event is one entry of the simulation's time-ordered queue.
type event struct {
	at     time.Duration
	seq    int
	kind   eventKind
	worker int
	// extra marks a flood adversary's surplus pushes: they traverse the
	// full push path but do not consume the worker's iteration budget.
	extra bool
	// factor carries the delay-shift multiplier.
	factor float64
	// adversary carries the behaviour an evAdversary event installs.
	adversary AdversaryKind
}

// eventQueue is a min-heap of events ordered by time then insertion order.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// simulation carries the mutable state of one run.
type simulation struct {
	cfg        RunConfig
	policy     core.Policy
	aggregated bool
	rng        *rand.Rand

	transfer  time.Duration
	applyCost time.Duration
	keyCost   time.Duration

	queue *eventQueue
	seq   int

	remaining     []int
	baseVersion   []int
	pushArrivedAt []time.Duration
	waiting       []bool
	failed        []bool
	finishedAt    []time.Duration
	version       int

	// speedScale multiplies each worker's compute time (EventDelayShift).
	speedScale []float64
	// links is the per-worker Markov link state.
	links []linkState
	// adversary is each worker's current behaviour.
	adversary []AdversaryKind

	// Guard state (nil monitor when the guard is disabled).
	guardCfg GuardSpec
	monitor  *core.ClockMonitor
	strikes  []int

	linkFreeAt time.Duration
	cpuFreeAt  time.Duration

	result *RunResult
}

// Run executes one simulated training run.
func Run(cfg RunConfig) (*RunResult, error) {
	workers := cfg.Cluster.NumWorkers()
	if workers == 0 {
		return nil, fmt.Errorf("simulate: cluster has no workers")
	}
	if cfg.IterationsPerWorker <= 0 {
		return nil, fmt.Errorf("simulate: iterations per worker must be positive, got %d", cfg.IterationsPerWorker)
	}
	if cfg.Cluster.LinkBandwidth <= 0 || cfg.Cluster.ApplyRate <= 0 {
		return nil, fmt.Errorf("simulate: cluster bandwidth and apply rate must be positive")
	}
	cfg.Policy.Workers = workers
	policy, err := core.NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}

	sim := &simulation{
		cfg:    cfg,
		policy: policy,
		// Synchronous paradigms aggregate the round's gradients into a single
		// server-side update; asynchronous ones pay the apply and per-key
		// cost on every push.
		aggregated: cfg.Policy.Paradigm == core.ParadigmBSP || cfg.Policy.Paradigm == core.ParadigmBackupBSP,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		transfer: cfg.Cluster.LinkLatency +
			time.Duration(float64(cfg.Model.Bytes())/cfg.Cluster.LinkBandwidth*float64(time.Second)),
		applyCost: time.Duration(float64(cfg.Model.Params) / cfg.Cluster.ApplyRate * float64(time.Second)),
		keyCost:   time.Duration(cfg.Model.Layers) * cfg.Cluster.PerKeyOverhead,
		queue:     &eventQueue{},

		remaining:     make([]int, workers),
		baseVersion:   make([]int, workers),
		pushArrivedAt: make([]time.Duration, workers),
		waiting:       make([]bool, workers),
		failed:        make([]bool, workers),
		finishedAt:    make([]time.Duration, workers),

		result: &RunResult{
			Label:     cfg.Policy.Describe(),
			Waits:     make([]time.Duration, workers),
			Staleness: metrics.NewHistogram(),
		},
	}
	_, sim.result.Bounded = policy.(core.StalenessBounder)

	sim.speedScale = make([]float64, workers)
	sim.links = make([]linkState, workers)
	sim.adversary = make([]AdversaryKind, workers)
	for w := 0; w < workers; w++ {
		sim.speedScale[w] = 1
		sim.links[w] = newLinkState(cfg.Links[w])
		sim.adversary[w] = cfg.Adversaries[w]
	}
	sim.guardCfg = cfg.Guard.normalized()
	if sim.guardCfg.Enabled {
		sim.monitor = core.NewClockMonitor(workers, sim.guardCfg.FloodSlack)
		sim.strikes = make([]int, workers)
		sim.result.Flags = make([]int, workers)
	}

	events := make([]Event, 0, len(cfg.Events)+len(cfg.Failures))
	events = append(events, cfg.Events...)
	for _, f := range cfg.Failures {
		events = append(events, Crash(f.Worker, f.At))
	}
	for _, e := range events {
		if err := e.validate(workers); err != nil {
			return nil, err
		}
		switch e.Kind {
		case EventCrash:
			sim.schedule(e.At, evFail, e.Worker)
		case EventRejoin:
			sim.scheduleEvent(event{at: e.At, kind: evRejoin, worker: e.Worker})
		case EventDelayShift:
			sim.scheduleEvent(event{at: e.At, kind: evDelayShift, worker: e.Worker, factor: e.Factor})
		case EventAdversary:
			sim.scheduleEvent(event{at: e.At, kind: evAdversary, worker: e.Worker, adversary: e.Adversary})
		}
	}
	for w := 0; w < workers; w++ {
		sim.remaining[w] = cfg.IterationsPerWorker
		sim.schedule(sim.computeTime(w), evComputeDone, w)
	}
	sim.run()

	for _, at := range sim.finishedAt {
		if at > sim.result.Finish {
			sim.result.Finish = at
		}
	}
	return sim.result, nil
}

// schedule enqueues an event.
func (s *simulation) schedule(at time.Duration, kind eventKind, worker int) {
	s.scheduleEvent(event{at: at, kind: kind, worker: worker})
}

// scheduleEvent enqueues a fully specified event.
func (s *simulation) scheduleEvent(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(s.queue, ev)
}

// computeTime samples one mini-batch duration for the given worker.
func (s *simulation) computeTime(w int) time.Duration {
	mean := float64(s.cfg.Model.ComputeTime) / s.cfg.Cluster.Workers[w].Speed * s.speedScale[w]
	jitter := 1 + s.cfg.Cluster.ComputeJitter*s.rng.NormFloat64()
	if jitter < 0.3 {
		jitter = 0.3
	}
	return time.Duration(mean * jitter)
}

// acquire reserves a FIFO shared resource starting no earlier than now and
// returns the completion time.
func acquire(freeAt *time.Duration, now, cost time.Duration) time.Duration {
	start := now
	if *freeAt > start {
		start = *freeAt
	}
	end := start + cost
	*freeAt = end
	return end
}

// run drains the event queue. Events of a crashed worker are discarded —
// its in-flight push or pull died with it — except rejoins and state
// changes, which must survive the crash to take effect afterwards.
func (s *simulation) run() {
	for s.queue.Len() > 0 {
		ev := heap.Pop(s.queue).(event)
		if s.failed[ev.worker] && ev.kind != evRejoin && ev.kind != evDelayShift && ev.kind != evAdversary {
			continue
		}
		switch ev.kind {
		case evComputeDone:
			s.onComputeDone(ev)
		case evPushArrive:
			s.onPushArrive(ev)
		case evPullDone:
			s.onPullDone(ev)
		case evFail:
			s.onFail(ev)
		case evRejoin:
			s.onRejoin(ev)
		case evDelayShift:
			s.speedScale[ev.worker] = ev.factor
		case evAdversary:
			s.adversary[ev.worker] = ev.adversary
		}
	}
}

// effectiveTransfer returns worker w's transfer cost on the critical path at
// time now: barrier paradigms pay it in full, asynchronous-like paradigms
// hide CommOverlap of it behind computation, and the worker's link model
// (if any) scales the result by its current Markov state.
func (s *simulation) effectiveTransfer(w int, now time.Duration) time.Duration {
	base := s.transfer
	if !s.aggregated {
		overlap := s.cfg.Cluster.CommOverlap
		if overlap < 0 {
			overlap = 0
		}
		if overlap > 1 {
			overlap = 1
		}
		base = time.Duration(float64(s.transfer) * (1 - overlap))
	}
	return time.Duration(float64(base) * s.links[w].multiplier(now, s.rng))
}

// onComputeDone sends the worker's gradient to the server over the shared
// link. A flood adversary emits floodBurst copies back to back; only the
// first consumes the worker's iteration budget.
func (s *simulation) onComputeDone(ev event) {
	arrival := acquire(&s.linkFreeAt, ev.at, s.effectiveTransfer(ev.worker, ev.at))
	s.scheduleEvent(event{at: arrival, kind: evPushArrive, worker: ev.worker})
	if s.adversary[ev.worker] == AdversaryPushFlood {
		for i := 1; i < floodBurst; i++ {
			arrival = acquire(&s.linkFreeAt, arrival, s.effectiveTransfer(ev.worker, arrival))
			s.scheduleEvent(event{at: arrival, kind: evPushArrive, worker: ev.worker, extra: true})
		}
	}
}

// onPushArrive screens the push through the guard (if enabled), applies the
// update (unless dropped), consults the policy, and starts the pull transfer
// of every released worker. Mirroring the real server, an evicting push
// never reaches the policy's OnPush — the worker leaves instead.
func (s *simulation) onPushArrive(ev event) {
	w := ev.worker
	if !ev.extra {
		s.remaining[w]--
		s.pushArrivedAt[w] = ev.at
		s.waiting[w] = true
	}

	guardDrop := false
	if s.monitor != nil {
		claimed := int64(s.baseVersion[w])
		if s.adversary[w] == AdversaryLyingClock {
			claimed = int64(s.version) + lieAhead
		}
		flags := len(s.monitor.ObservePush(core.WorkerID(w), claimed, int64(s.version)))
		if flags > 0 {
			s.result.Flags[w] += flags
			s.strikes[w] += flags
			s.result.GuardDropped++
			guardDrop = true
			if s.strikes[w] >= s.guardCfg.MaxStrikes {
				s.result.Evicted = append(s.result.Evicted, w)
				s.crashWorker(w, ev.at)
				return
			}
		}
	}

	decision := s.policy.OnPush(core.WorkerID(w), time.Unix(0, 0).Add(ev.at))

	readyAt := ev.at
	if guardDrop {
		// Dropped by the guard; the policy's releases still flow so
		// barrier paradigms never deadlock on a rejected payload.
	} else if decision.Drop {
		s.result.DroppedUpdates++
	} else {
		staleness := s.version - s.baseVersion[w]
		s.version++
		s.result.Staleness.Observe(staleness)
		s.result.Updates = append(s.result.Updates, UpdateEvent{At: ev.at, Worker: w, Staleness: staleness})

		// Server CPU cost: per-push for asynchronous paradigms, once per
		// barrier round for aggregating ones.
		cost := time.Duration(0)
		if s.aggregated {
			if len(decision.Release) > 0 {
				cost = s.applyCost + s.keyCost
			}
		} else {
			cost = s.applyCost + s.keyCost
		}
		if cost > 0 {
			readyAt = acquire(&s.cpuFreeAt, ev.at, cost)
		}
	}

	s.releaseWorkers(decision.Release, readyAt)
}

// onFail crashes a worker: it stops computing, any queued events for it are
// discarded by run, and the policy is told it left so that peers blocked on
// it are re-evaluated — exactly what the real server does when a connection
// dies or a lease expires. The worker's remaining iteration budget is
// preserved so an EventRejoin can resume it.
func (s *simulation) onFail(ev event) {
	w := ev.worker
	if s.remaining[w] <= 0 && !s.waiting[w] {
		// Already finished; the crash is moot.
		return
	}
	s.crashWorker(w, ev.at)
}

// crashWorker marks a worker dead (crash or guard eviction) and tells the
// policy it left.
func (s *simulation) crashWorker(w int, at time.Duration) {
	s.failed[w] = true
	s.waiting[w] = false
	s.finishedAt[w] = at
	decision := s.policy.OnLeave(core.WorkerID(w), time.Unix(0, 0).Add(at))
	s.releaseWorkers(decision.Release, at)
}

// onRejoin resurrects a crashed worker: the policy admits it back, it pulls
// fresh weights and resumes its remaining iterations.
func (s *simulation) onRejoin(ev event) {
	w := ev.worker
	if !s.failed[w] || s.remaining[w] <= 0 {
		return
	}
	s.failed[w] = false
	s.finishedAt[w] = 0
	s.result.Rejoins++
	decision := s.policy.OnJoin(core.WorkerID(w), time.Unix(0, 0).Add(ev.at))
	s.releaseWorkers(decision.Release, ev.at)
	if s.monitor != nil {
		s.monitor.ObservePull(core.WorkerID(w))
	}
	pullDone := acquire(&s.linkFreeAt, ev.at, s.effectiveTransfer(w, ev.at))
	s.baseVersion[w] = s.version
	s.schedule(pullDone, evPullDone, w)
}

// releaseWorkers processes a policy release list: waiting workers resume
// (pull then compute) or finish, and their synchronization wait is recorded.
func (s *simulation) releaseWorkers(release []core.WorkerID, readyAt time.Duration) {
	for _, id := range release {
		r := int(id)
		if !s.waiting[r] || s.failed[r] {
			continue
		}
		s.waiting[r] = false
		releaseAt := readyAt
		if s.pushArrivedAt[r] > releaseAt {
			releaseAt = s.pushArrivedAt[r]
		}
		s.result.Waits[r] += releaseAt - s.pushArrivedAt[r]

		if s.remaining[r] <= 0 {
			// The worker has pushed its final gradient; it only needed the
			// release to know the round completed. Mirroring the real
			// server (Done then session close), it leaves the policy's
			// accounting so laggards are not held to its frozen clock.
			s.finishedAt[r] = releaseAt
			d := s.policy.OnLeave(core.WorkerID(r), time.Unix(0, 0).Add(releaseAt))
			s.releaseWorkers(d.Release, releaseAt)
			continue
		}
		// Pull the fresh weights over the shared link, then start computing.
		if s.monitor != nil {
			s.monitor.ObservePull(core.WorkerID(r))
		}
		pullDone := acquire(&s.linkFreeAt, releaseAt, s.effectiveTransfer(r, releaseAt))
		s.baseVersion[r] = s.version
		s.schedule(pullDone, evPullDone, r)
	}
}

// onPullDone starts the worker's next compute phase.
func (s *simulation) onPullDone(ev event) {
	s.schedule(ev.at+s.computeTime(ev.worker), evComputeDone, ev.worker)
}
