package simulate

import (
	"testing"
	"time"

	"dssp/internal/core"
)

func eventBase() RunConfig {
	return RunConfig{
		Model:               ModelProfile{Name: "tiny", Params: 1e5, ComputeTime: 10 * time.Millisecond, Layers: 4},
		Cluster:             HomogeneousCluster(4),
		Policy:              core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 2},
		IterationsPerWorker: 40,
		Seed:                7,
	}
}

func updateCounts(res *RunResult, workers int) []int {
	counts := make([]int, workers)
	for _, u := range res.Updates {
		counts[u.Worker]++
	}
	return counts
}

// TestRejoinResumesRemainingIterations: a crash preserves the iteration
// budget, and a rejoin finishes it — the worker ends with its full quota of
// applied updates despite the outage.
func TestRejoinResumesRemainingIterations(t *testing.T) {
	cfg := eventBase()
	cfg.Events = []Event{
		Crash(3, 120*time.Millisecond),
		Rejoin(3, 400*time.Millisecond),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", res.Rejoins)
	}
	counts := updateCounts(res, 4)
	if counts[3] != 40 {
		t.Fatalf("rejoined worker applied %d updates, want all 40", counts[3])
	}
}

// TestCrashWithoutRejoinMatchesLegacyFailures: Events and the deprecated
// Failures field must describe the identical run.
func TestCrashWithoutRejoinMatchesLegacyFailures(t *testing.T) {
	viaEvents := eventBase()
	viaEvents.Events = []Event{Crash(3, 120*time.Millisecond)}
	a, err := Run(viaEvents)
	if err != nil {
		t.Fatal(err)
	}
	viaFailures := eventBase()
	viaFailures.Failures = []WorkerFailure{{Worker: 3, At: 120 * time.Millisecond}}
	b, err := Run(viaFailures)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Updates) != len(b.Updates) || a.Finish != b.Finish {
		t.Fatalf("events run (%d updates, finish %v) != failures run (%d updates, finish %v)",
			len(a.Updates), a.Finish, len(b.Updates), b.Finish)
	}
}

// TestDelayShiftSlowsTheRun: quartering a worker's speed mid-run must push
// the finish time out.
func TestDelayShiftSlowsTheRun(t *testing.T) {
	base, err := Run(eventBase())
	if err != nil {
		t.Fatal(err)
	}
	cfg := eventBase()
	cfg.Events = []Event{{At: 50 * time.Millisecond, Worker: 0, Kind: EventDelayShift, Factor: 4}}
	slowed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slowed.Finish <= base.Finish {
		t.Fatalf("delay-shifted run finished at %v, baseline %v", slowed.Finish, base.Finish)
	}
}

func TestEventValidation(t *testing.T) {
	bad := []Event{
		{At: 0, Worker: 9, Kind: EventCrash},                  // worker out of range
		{At: 0, Worker: 0, Kind: EventDelayShift},             // missing factor
		{At: 0, Worker: 0, Kind: EventDelayShift, Factor: -1}, // negative factor
		{At: 0, Worker: 0},                                    // zero kind
	}
	for i, e := range bad {
		cfg := eventBase()
		cfg.Events = []Event{e}
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, e)
		}
	}
}

// TestHostileLinkSlowsTheRun: a flapping or partitioned link on one worker
// must cost simulated wall-clock versus calm links.
func TestHostileLinkSlowsTheRun(t *testing.T) {
	base, err := Run(eventBase())
	if err != nil {
		t.Fatal(err)
	}
	for name, model := range map[string]LinkModel{
		"slow":        LinkSlow(),
		"partitioned": LinkPartitioned(),
	} {
		cfg := eventBase()
		cfg.Links = map[int]LinkModel{0: model}
		hostile, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hostile.Finish <= base.Finish {
			t.Errorf("%s link: finish %v not later than calm baseline %v", name, hostile.Finish, base.Finish)
		}
	}
}

// TestGuardEvictsLyingClockSim: the simulated guard must flag and evict a
// lying-clock worker while the honest workers complete untouched.
func TestGuardEvictsLyingClockSim(t *testing.T) {
	cfg := eventBase()
	cfg.Policy = core.PolicyConfig{Paradigm: core.ParadigmASP}
	cfg.Adversaries = map[int]AdversaryKind{2: AdversaryLyingClock}
	cfg.Guard = GuardSpec{Enabled: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", res.Evicted)
	}
	if res.Flags[2] < 3 {
		t.Fatalf("attacker flags = %d, want >= 3", res.Flags[2])
	}
	if res.GuardDropped == 0 {
		t.Fatal("no pushes dropped by the guard")
	}
	counts := updateCounts(res, 4)
	for w := 0; w < 4; w++ {
		if w == 2 {
			continue
		}
		if counts[w] != 40 {
			t.Errorf("honest worker %d applied %d updates, want 40", w, counts[w])
		}
		if res.Flags[w] != 0 {
			t.Errorf("honest worker %d flagged %d times", w, res.Flags[w])
		}
	}
}

// TestGuardEvictsPushFloodSim: a flooding worker exceeds the pushes-per-pull
// slack and is evicted.
func TestGuardEvictsPushFloodSim(t *testing.T) {
	cfg := eventBase()
	cfg.Policy = core.PolicyConfig{Paradigm: core.ParadigmASP}
	cfg.Adversaries = map[int]AdversaryKind{1: AdversaryPushFlood}
	cfg.Guard = GuardSpec{Enabled: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", res.Evicted)
	}
}

// TestFloodInflatesUpdatesWithoutGuard: without the guard, the flood attack
// succeeds — the attacker lands far more updates than its iteration budget.
func TestFloodInflatesUpdatesWithoutGuard(t *testing.T) {
	cfg := eventBase()
	cfg.Policy = core.PolicyConfig{Paradigm: core.ParadigmASP}
	cfg.Adversaries = map[int]AdversaryKind{1: AdversaryPushFlood}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := updateCounts(res, 4)
	if counts[1] <= 2*40 {
		t.Fatalf("flooding worker landed %d updates, want well above its 40 budget", counts[1])
	}
}

// TestAdversaryToggleMidRun: a worker turning hostile mid-run is detected
// only after the toggle.
func TestAdversaryToggleMidRun(t *testing.T) {
	cfg := eventBase()
	cfg.Policy = core.PolicyConfig{Paradigm: core.ParadigmASP}
	cfg.Guard = GuardSpec{Enabled: true}
	cfg.Events = []Event{{At: 200 * time.Millisecond, Worker: 0, Kind: EventAdversary, Adversary: AdversaryLyingClock}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 0 {
		t.Fatalf("evicted %v, want [0] after mid-run toggle", res.Evicted)
	}
	counts := updateCounts(res, 4)
	if counts[0] == 0 {
		t.Fatal("worker 0 applied no updates before turning hostile")
	}
	if counts[0] >= 40 {
		t.Fatalf("worker 0 applied %d updates, want fewer than its 40 budget after eviction", counts[0])
	}
}
