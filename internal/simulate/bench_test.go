package simulate

import (
	"testing"

	"dssp/internal/core"
)

// BenchmarkSimulateOneEpochHomogeneous measures simulating one epoch of the
// 4-worker homogeneous cluster under DSSP.
func BenchmarkSimulateOneEpochHomogeneous(b *testing.B) {
	iters := PaperEpochIterations(1, 4)
	for i := 0; i < b.N; i++ {
		_, err := Run(RunConfig{
			Model:               ModelResNet110,
			Cluster:             HomogeneousCluster(4),
			Policy:              core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12},
			IterationsPerWorker: iters,
			Seed:                int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHeterogeneousParadigms measures the per-paradigm cost of
// the heterogeneous simulation (the inner loop of Figure 4 / Table I).
func BenchmarkSimulateHeterogeneousParadigms(b *testing.B) {
	policies := map[string]core.PolicyConfig{
		"BSP":  {Paradigm: core.ParadigmBSP},
		"ASP":  {Paradigm: core.ParadigmASP},
		"SSP":  {Paradigm: core.ParadigmSSP, Staleness: 15},
		"DSSP": {Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12},
	}
	iters := PaperEpochIterations(5, 2)
	for name, policy := range policies {
		policy := policy
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(RunConfig{
					Model:               ModelResNet110,
					Cluster:             HeterogeneousCluster(),
					Policy:              policy,
					IterationsPerWorker: iters,
					Seed:                1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccuracyCurve measures converting a full update trace into an
// accuracy curve.
func BenchmarkAccuracyCurve(b *testing.B) {
	iters := PaperEpochIterations(20, 4)
	run, err := Run(RunConfig{
		Model:               ModelResNet50,
		Cluster:             HomogeneousCluster(4),
		Policy:              core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3},
		IterationsPerWorker: iters,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AccuracyCurve(ModelResNet50.Convergence, run, iters*4, 60)
	}
}
