package simulate

import (
	"testing"
	"time"

	"dssp/internal/core"
)

// TestDSSPGrantsAdaptToHeterogeneity drives the DSSP policy directly with the
// simulator's heterogeneous timing (via core's grant recording) and verifies
// the paper's §I-B claim that the threshold effectively changes over time and
// adapts to the environment: the controller issues grants of several
// different sizes rather than a single fixed value.
func TestDSSPGrantsAdaptToHeterogeneity(t *testing.T) {
	policy := core.MustNewDSSP(2, 3, 12)
	policy.RecordGrants(true)

	// Drive the policy with the heterogeneous cluster's iteration intervals:
	// the GTX1080Ti worker pushes roughly every 200ms, the GTX1060 worker
	// every 480ms, with small deterministic wobble.
	now := time.Unix(0, 0)
	fastNext, slowNext := now.Add(200*time.Millisecond), now.Add(480*time.Millisecond)
	released := []bool{true, true}
	for i := 0; i < 2000; i++ {
		var w core.WorkerID
		var at time.Time
		switch {
		case released[0] && (!released[1] || fastNext.Before(slowNext)):
			w, at = 0, fastNext
		case released[1]:
			w, at = 1, slowNext
		default:
			t.Fatal("both workers blocked: deadlock")
		}
		released[w] = false
		d := policy.OnPush(w, at)
		for _, id := range d.Release {
			released[id] = true
			wobble := time.Duration((i%7)-3) * time.Millisecond
			if id == 0 {
				fastNext = at.Add(200*time.Millisecond + wobble)
			} else {
				slowNext = at.Add(480*time.Millisecond + wobble)
			}
		}
	}

	grants := policy.Grants()
	if len(grants) == 0 {
		t.Fatal("controller was never consulted")
	}
	sizes := map[int]int{}
	positive := 0
	for _, g := range grants {
		sizes[g.Extra]++
		if g.Extra > 0 {
			positive++
		}
	}
	if len(sizes) < 2 {
		t.Fatalf("threshold never adapted: every grant was %v", sizes)
	}
	if positive == 0 {
		t.Fatal("controller never granted extra iterations to the fast worker")
	}
	// The fast worker must end up far ahead in iteration count, the §V-D
	// behaviour that gives DSSP its heterogeneous-cluster advantage.
	if policy.Clock(0) <= policy.Clock(1) {
		t.Fatalf("fast worker clock %d not ahead of slow worker %d", policy.Clock(0), policy.Clock(1))
	}
}
