package simulate

import (
	"math/rand"
	"time"
)

// LinkModel is a two-state Markov-modulated link: transfers over the link
// cost their nominal time in the good state and Multiplier times as much in
// the bad state, with exponentially distributed dwell times in each. This
// is the standard Gilbert-Elliott-style degradation model; the presets
// below cover the hostile-network scenarios of the experiment harness.
//
// The zero LinkModel is a calm link (no modulation). MeanGood == 0 with
// MeanBad > 0 pins the link in the bad state permanently — a constant
// slowdown rather than flapping.
type LinkModel struct {
	// Multiplier scales transfer time while the link is bad. Values <= 1
	// disable the model.
	Multiplier float64
	// MeanGood is the expected dwell time in the good state (0 = never
	// good: the link is permanently bad).
	MeanGood time.Duration
	// MeanBad is the expected dwell time in the bad state.
	MeanBad time.Duration
}

// active reports whether the model modulates anything.
func (m LinkModel) active() bool { return m.Multiplier > 1 && m.MeanBad > 0 }

// Link presets for scenario matrices.

// LinkCalm is a well-behaved link: no modulation.
func LinkCalm() LinkModel { return LinkModel{} }

// LinkFlapping degrades in short bursts: 10x transfer cost about a fifth of
// the time — a congested or lossy path with retransmission storms.
func LinkFlapping() LinkModel {
	return LinkModel{Multiplier: 10, MeanGood: 200 * time.Millisecond, MeanBad: 50 * time.Millisecond}
}

// LinkSlow is a permanently degraded link at 4x nominal transfer cost — a
// worker behind a thin WAN pipe.
func LinkSlow() LinkModel {
	return LinkModel{Multiplier: 4, MeanGood: 0, MeanBad: time.Hour}
}

// LinkPartitioned models hard outages: the link periodically becomes close
// to unusable (40x) for extended stretches, as in a routing flap or switch
// failure, then recovers.
func LinkPartitioned() LinkModel {
	return LinkModel{Multiplier: 40, MeanGood: 300 * time.Millisecond, MeanBad: 150 * time.Millisecond}
}

// linkState is the per-worker runtime state of a LinkModel's Markov chain.
type linkState struct {
	model   LinkModel
	started bool
	bad     bool
	until   time.Duration
}

// newLinkState starts a link in the good state (or pinned bad when MeanGood
// is zero).
func newLinkState(m LinkModel) linkState {
	return linkState{model: m, bad: m.active() && m.MeanGood == 0}
}

// multiplier advances the chain to time now and returns the current
// transfer-cost multiplier.
func (l *linkState) multiplier(now time.Duration, rng *rand.Rand) float64 {
	if !l.model.active() {
		return 1
	}
	if l.model.MeanGood == 0 {
		return l.model.Multiplier // permanently bad
	}
	if !l.started {
		l.started = true
		l.until = l.dwell(rng)
	}
	for l.until <= now {
		l.bad = !l.bad
		l.until += l.dwell(rng)
	}
	if l.bad {
		return l.model.Multiplier
	}
	return 1
}

// dwell samples an exponential dwell time for the current state.
func (l *linkState) dwell(rng *rand.Rand) time.Duration {
	mean := l.model.MeanGood
	if l.bad {
		mean = l.model.MeanBad
	}
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = 1
	}
	return d
}
