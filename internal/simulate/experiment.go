package simulate

import (
	"fmt"
	"time"

	"dssp/internal/core"
	"dssp/internal/metrics"
)

// ExperimentConfig controls how the paper's experiments are regenerated.
type ExperimentConfig struct {
	// Epochs is the number of training epochs to simulate; the paper uses
	// 300. Benchmarks use smaller values since the curve shapes are scale-
	// invariant under the convergence model's normalization.
	Epochs int
	// Seed drives compute-time jitter.
	Seed int64
	// Points is the approximate number of samples per accuracy curve.
	Points int
}

// DefaultExperimentConfig returns the paper's settings: 300 epochs.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{Epochs: 300, Seed: 1, Points: 60}
}

// withDefaults fills unset fields.
func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.Points <= 0 {
		c.Points = 60
	}
	return c
}

// ParadigmResult is one curve of a figure.
type ParadigmResult struct {
	// Label names the paradigm (legend entry).
	Label string
	// Curve is simulated test accuracy against training time.
	Curve *metrics.TimeSeries
	// Run is the underlying simulation outcome.
	Run *RunResult
	// FinalAccuracy is the last point of the curve.
	FinalAccuracy float64
	// Finish is the simulated time at which all workers completed.
	Finish time.Duration
}

// Figure is one regenerated figure (or table) of the paper: a set of curves
// over the same model and cluster.
type Figure struct {
	// ID is the paper's figure/table identifier, e.g. "fig3a" or "table1".
	ID string
	// Title describes the experiment.
	Title string
	// Model and Cluster identify the workload.
	Model   ModelProfile
	Cluster ClusterSpec
	// Epochs is the number of simulated epochs.
	Epochs int
	// Results holds one entry per curve, in legend order.
	Results []ParadigmResult
}

// Result returns the named curve and whether it exists.
func (f *Figure) Result(label string) (ParadigmResult, bool) {
	for _, r := range f.Results {
		if r.Label == label {
			return r, true
		}
	}
	return ParadigmResult{}, false
}

// TimeToAccuracy returns, per curve, the first simulated time at which the
// target accuracy was reached (Table I). Curves that never reach it are
// omitted.
func (f *Figure) TimeToAccuracy(target float64) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, r := range f.Results {
		if d, ok := r.Curve.TimeToReach(target); ok {
			out[r.Label] = d
		}
	}
	return out
}

// runParadigm simulates one paradigm on the given workload and converts the
// result into a labelled accuracy curve.
func runParadigm(model ModelProfile, cluster ClusterSpec, policy core.PolicyConfig, cfg ExperimentConfig, label string) (ParadigmResult, error) {
	iters := PaperEpochIterations(cfg.Epochs, cluster.NumWorkers())
	run, err := Run(RunConfig{
		Model:               model,
		Cluster:             cluster,
		Policy:              policy,
		IterationsPerWorker: iters,
		Seed:                cfg.Seed,
	})
	if err != nil {
		return ParadigmResult{}, err
	}
	total := iters * cluster.NumWorkers()
	curve := AccuracyCurve(model.Convergence, run, total, cfg.Points)
	if label == "" {
		label = policy.Describe()
	}
	res := ParadigmResult{Label: label, Curve: curve, Run: run, Finish: run.Finish}
	if last, ok := curve.Last(); ok {
		res.FinalAccuracy = last.Value
	}
	return res, nil
}

// paperDSSP returns the paper's DSSP setting: sL=3 with range r=12
// (equivalent SSP threshold range [3, 15]).
func paperDSSP() core.PolicyConfig {
	return core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12}
}

// CompareParadigms regenerates a left-column figure of Figure 3: BSP, ASP,
// DSSP(sL=3, r=12) and the average of SSP with thresholds 3..15, on the
// given model over the given cluster.
func CompareParadigms(id, title string, model ModelProfile, cluster ClusterSpec, cfg ExperimentConfig) (*Figure, error) {
	cfg = cfg.withDefaults()
	fig := &Figure{ID: id, Title: title, Model: model, Cluster: cluster, Epochs: cfg.Epochs}

	bsp, err := runParadigm(model, cluster, core.PolicyConfig{Paradigm: core.ParadigmBSP}, cfg, "BSP")
	if err != nil {
		return nil, err
	}
	asp, err := runParadigm(model, cluster, core.PolicyConfig{Paradigm: core.ParadigmASP}, cfg, "ASP")
	if err != nil {
		return nil, err
	}
	dssp, err := runParadigm(model, cluster, paperDSSP(), cfg, "DSSP s=3 r=12")
	if err != nil {
		return nil, err
	}

	sweep, err := sspSweep(model, cluster, cfg, 3, 15)
	if err != nil {
		return nil, err
	}
	curves := make([]*metrics.TimeSeries, len(sweep))
	for i, r := range sweep {
		curves[i] = r.Curve
	}
	avg := AverageSeries("Average SSP s=3 to 15", curves, cfg.Points)
	avgResult := ParadigmResult{Label: avg.Name(), Curve: avg}
	if last, ok := avg.Last(); ok {
		avgResult.FinalAccuracy = last.Value
		avgResult.Finish = last.Elapsed
	}

	fig.Results = append(fig.Results, bsp, asp, dssp, avgResult)
	return fig, nil
}

// sspSweep runs SSP for every threshold in [lo, hi].
func sspSweep(model ModelProfile, cluster ClusterSpec, cfg ExperimentConfig, lo, hi int) ([]ParadigmResult, error) {
	var out []ParadigmResult
	for s := lo; s <= hi; s++ {
		r, err := runParadigm(model, cluster,
			core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: s}, cfg, fmt.Sprintf("SSP s=%d", s))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CompareSSPSweep regenerates a right-column figure of Figure 3: DSSP against
// each individual SSP threshold from 3 to 15.
func CompareSSPSweep(id, title string, model ModelProfile, cluster ClusterSpec, cfg ExperimentConfig) (*Figure, error) {
	cfg = cfg.withDefaults()
	fig := &Figure{ID: id, Title: title, Model: model, Cluster: cluster, Epochs: cfg.Epochs}
	sweep, err := sspSweep(model, cluster, cfg, 3, 15)
	if err != nil {
		return nil, err
	}
	fig.Results = append(fig.Results, sweep...)
	dssp, err := runParadigm(model, cluster, paperDSSP(), cfg, "DSSP s=3 r=12")
	if err != nil {
		return nil, err
	}
	fig.Results = append(fig.Results, dssp)
	return fig, nil
}

// Figure3a compares all paradigms on the downsized AlexNet (CIFAR-10) over
// the homogeneous 4-worker P100 cluster.
func Figure3a(cfg ExperimentConfig) (*Figure, error) {
	return CompareParadigms("fig3a", "All paradigms, downsized AlexNet on CIFAR-10 (homogeneous)",
		ModelAlexNetSmall, HomogeneousCluster(4), cfg)
}

// Figure3b compares DSSP with individual SSP thresholds on the downsized
// AlexNet.
func Figure3b(cfg ExperimentConfig) (*Figure, error) {
	return CompareSSPSweep("fig3b", "DSSP vs SSP s=3..15, downsized AlexNet on CIFAR-10 (homogeneous)",
		ModelAlexNetSmall, HomogeneousCluster(4), cfg)
}

// Figure3c compares all paradigms on ResNet-50 (CIFAR-100).
func Figure3c(cfg ExperimentConfig) (*Figure, error) {
	return CompareParadigms("fig3c", "All paradigms, ResNet-50 on CIFAR-100 (homogeneous)",
		ModelResNet50, HomogeneousCluster(4), cfg)
}

// Figure3d compares DSSP with individual SSP thresholds on ResNet-50.
func Figure3d(cfg ExperimentConfig) (*Figure, error) {
	return CompareSSPSweep("fig3d", "DSSP vs SSP s=3..15, ResNet-50 on CIFAR-100 (homogeneous)",
		ModelResNet50, HomogeneousCluster(4), cfg)
}

// Figure3e compares all paradigms on ResNet-110 (CIFAR-100).
func Figure3e(cfg ExperimentConfig) (*Figure, error) {
	return CompareParadigms("fig3e", "All paradigms, ResNet-110 on CIFAR-100 (homogeneous)",
		ModelResNet110, HomogeneousCluster(4), cfg)
}

// Figure3f compares DSSP with individual SSP thresholds on ResNet-110.
func Figure3f(cfg ExperimentConfig) (*Figure, error) {
	return CompareSSPSweep("fig3f", "DSSP vs SSP s=3..15, ResNet-110 on CIFAR-100 (homogeneous)",
		ModelResNet110, HomogeneousCluster(4), cfg)
}

// Figure4 reproduces the heterogeneous-cluster experiment: ResNet-110 on the
// mixed GTX1060/GTX1080Ti cluster, comparing BSP, ASP, SSP s∈{3,6,15} and
// DSSP.
func Figure4(cfg ExperimentConfig) (*Figure, error) {
	cfg = cfg.withDefaults()
	model, cluster := ModelResNet110, HeterogeneousCluster()
	fig := &Figure{
		ID:      "fig4",
		Title:   "ResNet-110 on CIFAR-100, heterogeneous 2-worker cluster (GTX1060 + GTX1080Ti)",
		Model:   model,
		Cluster: cluster,
		Epochs:  cfg.Epochs,
	}
	entries := []struct {
		label  string
		policy core.PolicyConfig
	}{
		{"BSP", core.PolicyConfig{Paradigm: core.ParadigmBSP}},
		{"ASP", core.PolicyConfig{Paradigm: core.ParadigmASP}},
		{"SSP s=3", core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3}},
		{"SSP s=6", core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 6}},
		{"SSP s=15", core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 15}},
		{"DSSP s=3 r=12", paperDSSP()},
	}
	for _, e := range entries {
		r, err := runParadigm(model, cluster, e.policy, cfg, e.label)
		if err != nil {
			return nil, err
		}
		fig.Results = append(fig.Results, r)
	}
	return fig, nil
}

// TableIRow is one row of Table I: the time a paradigm needed to reach the
// two target accuracies on the heterogeneous cluster.
type TableIRow struct {
	// Label is the paradigm name.
	Label string
	// To067 and To068 are the times to reach 0.67 and 0.68 accuracy; Reached*
	// report whether the run ever got there ("-" in the paper).
	To067      time.Duration
	Reached067 bool
	To068      time.Duration
	Reached068 bool
}

// TableI regenerates Table I from the Figure 4 experiment.
func TableI(cfg ExperimentConfig) ([]TableIRow, error) {
	fig, err := Figure4(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]TableIRow, 0, len(fig.Results))
	for _, r := range fig.Results {
		row := TableIRow{Label: r.Label}
		row.To067, row.Reached067 = r.Curve.TimeToReach(0.67)
		row.To068, row.Reached068 = r.Curve.TimeToReach(0.68)
		rows = append(rows, row)
	}
	return rows, nil
}

// ThroughputTrend captures the §V-C observation for one model: the ordering
// of time-to-completion across paradigms flips between FC-bearing and
// conv-only models.
type ThroughputTrend struct {
	// Model names the architecture.
	Model string
	// HasFullyConnected mirrors the model profile.
	HasFullyConnected bool
	// FinishTimes maps paradigm label to simulated completion time of the
	// full run.
	FinishTimes map[string]time.Duration
}

// SectionVCThroughputTrends reproduces the §V-C comparison of iteration
// throughput trends on the homogeneous cluster for every paper model.
func SectionVCThroughputTrends(cfg ExperimentConfig) ([]ThroughputTrend, error) {
	cfg = cfg.withDefaults()
	cluster := HomogeneousCluster(4)
	paradigms := []struct {
		label  string
		policy core.PolicyConfig
	}{
		{"BSP", core.PolicyConfig{Paradigm: core.ParadigmBSP}},
		{"ASP", core.PolicyConfig{Paradigm: core.ParadigmASP}},
		{"SSP s=3", core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3}},
		{"DSSP s=3 r=12", paperDSSP()},
	}
	var out []ThroughputTrend
	for _, model := range []ModelProfile{ModelAlexNetSmall, ModelResNet50, ModelResNet110} {
		trend := ThroughputTrend{
			Model:             model.Name,
			HasFullyConnected: model.HasFullyConnected,
			FinishTimes:       make(map[string]time.Duration),
		}
		for _, p := range paradigms {
			r, err := runParadigm(model, cluster, p.policy, cfg, p.label)
			if err != nil {
				return nil, err
			}
			trend.FinishTimes[p.label] = r.Finish
		}
		out = append(out, trend)
	}
	return out, nil
}

// Figure2Waits reproduces the prediction-module illustration of Figure 2: for
// a fast and a slow worker with the given iteration intervals, it returns the
// predicted waiting time of the fast worker for every candidate r in
// [0, rmax] together with the r* the controller selects.
func Figure2Waits(fastInterval, slowInterval time.Duration, rmax int) ([]time.Duration, int, error) {
	if fastInterval <= 0 || slowInterval <= 0 || rmax < 0 {
		return nil, 0, fmt.Errorf("simulate: intervals must be positive and rmax >= 0")
	}
	ctl, err := core.NewController(2, rmax)
	if err != nil {
		return nil, 0, err
	}
	base := time.Unix(0, 0)
	// Two pushes per worker establish the interval estimates; both workers
	// push most recently at the same instant, as in Figure 2's diagram.
	ctl.Observe(0, base.Add(fastInterval))
	ctl.Observe(1, base.Add(slowInterval))
	ctl.Observe(0, base.Add(fastInterval*2))
	ctl.Observe(1, base.Add(slowInterval*2))
	// Align the decision point at the fast worker's latest push.
	clocks := []int{10, 2}
	waits := make([]time.Duration, rmax+1)
	for r := 0; r <= rmax; r++ {
		w, ok := ctl.PredictedWait(0, clocks, r)
		if !ok {
			return nil, 0, fmt.Errorf("simulate: predicted wait unavailable for r=%d", r)
		}
		waits[r] = w
	}
	return waits, ctl.ExtraIterations(0, clocks), nil
}
