// Package simulate contains the event-driven cluster simulator used to
// regenerate the paper's evaluation (Figures 3-4, Table I) without the
// original GPU clusters. Worker compute times, parameter-server transfer
// times and server-side update costs are modelled from calibrated hardware
// profiles; synchronization is driven by exactly the same core.Policy
// implementations used by the real parameter server; and a staleness-aware
// convergence model converts the resulting update trace into accuracy-versus-
// time curves. DESIGN.md documents the substitution and EXPERIMENTS.md the
// calibration outcomes.
package simulate

import (
	"time"
)

// GPUProfile describes a GPU model by its throughput relative to the paper's
// reference accelerator (NVIDIA P100 = 1.0).
type GPUProfile struct {
	// Name is the marketing name used in experiment labels.
	Name string
	// Speed is relative iteration throughput (higher is faster).
	Speed float64
}

// GPU profiles used in the paper's two clusters. Relative speeds follow the
// cards' single-precision throughput ratios.
var (
	GPUP100      = GPUProfile{Name: "P100", Speed: 1.0}
	GPUGTX1080Ti = GPUProfile{Name: "GTX1080Ti", Speed: 0.9}
	GPUGTX1060   = GPUProfile{Name: "GTX1060", Speed: 0.38}
)

// ModelProfile describes a DNN architecture as the simulator sees it: how
// long one mini-batch takes to compute on the reference GPU, how many
// parameters must be exchanged per iteration, how many parameter tensors
// (server keys) the update touches, and the anchors of its convergence model.
type ModelProfile struct {
	// Name labels the model in figures ("AlexNet-small", "ResNet-50", ...).
	Name string
	// Params is the number of scalar parameters exchanged per push/pull.
	Params int
	// Layers approximates the number of parameter-server keys; asynchronous
	// updates pay a per-key server cost that synchronous aggregation
	// amortizes over the whole round.
	Layers int
	// ComputeTime is the duration of one mini-batch (batch size 128) forward
	// and backward pass on the reference GPU.
	ComputeTime time.Duration
	// HasFullyConnected mirrors the paper's model categorisation in §V-C.
	HasFullyConnected bool
	// Convergence anchors the accuracy model for this model/dataset pair.
	Convergence ConvergenceSpec
}

// Bytes returns the size of one parameter transfer in bytes (float32).
func (m ModelProfile) Bytes() int { return 4 * m.Params }

// The paper's three architectures with calibration chosen so that per-
// iteration times and the compute/communication ratio reproduce the wall-
// clock scales of Figures 3-4: the downsized AlexNet is communication-bound
// (many parameters, cheap convolutions) while the ResNets are compute-bound
// (few parameters, expensive convolutions).
var (
	// ModelAlexNetSmall is the downsized AlexNet (3 conv + 2 FC layers)
	// trained on CIFAR-10 in the paper.
	ModelAlexNetSmall = ModelProfile{
		Name:              "AlexNet-small",
		Params:            2_100_000,
		Layers:            5,
		ComputeTime:       14 * time.Millisecond,
		HasFullyConnected: true,
		Convergence: ConvergenceSpec{
			FloorAccuracy:        0.10,
			PeakAccuracy:         0.645,
			ProgressRate:         4,
			StalenessQuality:     0.02,
			StalenessPenalty:     0.10,
			PenaltyHalfLife:      6,
			NoiseBonus:           0,
			NoiseBonusSaturation: 1,
			UnboundedPenalty:     0.03,
		},
	}

	// ModelResNet50 is the CIFAR-100 ResNet-50.
	ModelResNet50 = ModelProfile{
		Name:              "ResNet-50",
		Params:            760_000,
		Layers:            50,
		ComputeTime:       70 * time.Millisecond,
		HasFullyConnected: false,
		Convergence: ConvergenceSpec{
			FloorAccuracy:        0.01,
			PeakAccuracy:         0.65,
			ProgressRate:         7,
			StalenessQuality:     0.01,
			StalenessPenalty:     0.03,
			PenaltyHalfLife:      60,
			NoiseBonus:           0.03,
			NoiseBonusSaturation: 1,
			UnboundedPenalty:     0.004,
		},
	}

	// ModelResNet110 is the CIFAR-100 ResNet-110.
	ModelResNet110 = ModelProfile{
		Name:              "ResNet-110",
		Params:            1_730_000,
		Layers:            110,
		ComputeTime:       160 * time.Millisecond,
		HasFullyConnected: false,
		Convergence: ConvergenceSpec{
			FloorAccuracy:        0.01,
			PeakAccuracy:         0.665,
			ProgressRate:         7,
			StalenessQuality:     0.01,
			StalenessPenalty:     0.035,
			PenaltyHalfLife:      60,
			NoiseBonus:           0.035,
			NoiseBonusSaturation: 1,
			UnboundedPenalty:     0.004,
		},
	}
)

// ClusterSpec describes the distributed hardware: one GPU profile per worker
// plus the parameter-server resources every transfer and update contends for.
type ClusterSpec struct {
	// Name labels the cluster ("SOSCIP 4xP100", "mixed GTX").
	Name string
	// Workers lists one GPU per worker.
	Workers []GPUProfile
	// LinkBandwidth is the effective server network bandwidth in bytes per
	// second; pushes and pulls of all workers share it first-come-first-
	// served.
	LinkBandwidth float64
	// LinkLatency is the fixed per-transfer latency.
	LinkLatency time.Duration
	// ApplyRate is how many parameters per second the server can fold into
	// the global weights.
	ApplyRate float64
	// PerKeyOverhead is the server-side request-handling cost per parameter
	// tensor (key) for individually applied (asynchronous) updates;
	// synchronous aggregation pays it once per round instead of once per
	// push.
	PerKeyOverhead time.Duration
	// CommOverlap is the fraction of a worker's transfer time that the
	// framework hides behind computation when the paradigm does not impose a
	// barrier (the paper's §V-C: asynchronous-like schemes "shift" the
	// communication time). Barrier paradigms (BSP, backup-worker BSP) cannot
	// overlap and pay the full transfer cost on the critical path.
	CommOverlap float64
	// ComputeJitter is the relative standard deviation of compute times.
	ComputeJitter float64
}

// NumWorkers returns the number of workers in the cluster.
func (c ClusterSpec) NumWorkers() int { return len(c.Workers) }

// HomogeneousCluster returns the paper's SOSCIP-like cluster: n workers, each
// driven by a P100-class accelerator.
func HomogeneousCluster(n int) ClusterSpec {
	workers := make([]GPUProfile, n)
	for i := range workers {
		workers[i] = GPUP100
	}
	return ClusterSpec{
		Name:           "homogeneous-P100",
		Workers:        workers,
		LinkBandwidth:  1.2e9,
		LinkLatency:    500 * time.Microsecond,
		ApplyRate:      6e8,
		PerKeyOverhead: 800 * time.Microsecond,
		CommOverlap:    0.7,
		ComputeJitter:  0.04,
	}
}

// HeterogeneousCluster returns the paper's mixed consumer-GPU cluster: one
// GTX1080Ti worker and one GTX1060 worker behind a single desktop-class
// server.
func HeterogeneousCluster() ClusterSpec {
	return ClusterSpec{
		Name:           "heterogeneous-GTX",
		Workers:        []GPUProfile{GPUGTX1080Ti, GPUGTX1060},
		LinkBandwidth:  0.8e9,
		LinkLatency:    1 * time.Millisecond,
		ApplyRate:      4e8,
		PerKeyOverhead: 800 * time.Microsecond,
		CommOverlap:    0.7,
		ComputeJitter:  0.05,
	}
}

// PaperEpochIterations returns the number of iterations each worker performs
// for the paper's setup: `epochs` passes over a 50,000-image training set
// split evenly across the workers with mini-batches of 128.
func PaperEpochIterations(epochs, workers int) int {
	const trainImages = 50_000
	const batch = 128
	perEpoch := trainImages / (workers * batch)
	if perEpoch < 1 {
		perEpoch = 1
	}
	return perEpoch * epochs
}
