package simulate

import (
	"math"
	"time"

	"dssp/internal/metrics"
)

// ConvergenceSpec parameterizes the staleness-aware convergence model that
// converts a simulated update trace into a test-accuracy curve. The model
// follows the paper's qualitative analysis:
//
//   - every applied update contributes "effective progress" discounted by its
//     staleness (stale gradients are lower-quality, §I-A2 and [18]);
//   - accuracy follows a saturating curve of cumulative effective progress;
//   - the achievable plateau drops as the average staleness grows, strongly
//     for models with fully connected layers (they overfit to the errors
//     injected by delayed updates, §V-C) and mildly for pure CNNs;
//   - pure CNNs additionally gain a small regularization bonus from moderate
//     staleness, the paper's explanation for SSP/DSSP/ASP exceeding BSP's
//     accuracy on the ResNets (§V-C).
type ConvergenceSpec struct {
	// FloorAccuracy is the untrained accuracy (1/classes).
	FloorAccuracy float64
	// PeakAccuracy is the plateau reached with perfectly fresh updates.
	PeakAccuracy float64
	// ProgressRate controls how quickly the saturating curve approaches the
	// plateau as normalized progress goes from 0 to 1.
	ProgressRate float64
	// StalenessQuality is the per-update discount rate: an update with
	// staleness s contributes 1/(1+StalenessQuality*s) progress.
	StalenessQuality float64
	// StalenessPenalty is the maximum plateau reduction caused by staleness.
	StalenessPenalty float64
	// PenaltyHalfLife is the mean staleness at which half the penalty
	// applies.
	PenaltyHalfLife float64
	// NoiseBonus is the maximum plateau gain from staleness-induced gradient
	// noise (conv-only models).
	NoiseBonus float64
	// NoiseBonusSaturation is the mean staleness at which half the bonus is
	// realized (saturating form).
	NoiseBonusSaturation float64
	// UnboundedPenalty is an extra plateau reduction applied to paradigms
	// without any staleness bound (ASP), reflecting the paper's observation
	// that ASP "has no guarantee to converge" and sometimes diverges,
	// especially for models with fully connected layers.
	UnboundedPenalty float64
}

// Plateau returns the model's achievable accuracy given the mean staleness
// of applied updates and whether the paradigm bounds staleness at all.
func (c ConvergenceSpec) Plateau(meanStaleness float64, bounded bool) float64 {
	penalty := 0.0
	if c.StalenessPenalty > 0 && c.PenaltyHalfLife > 0 {
		penalty = c.StalenessPenalty * meanStaleness / (meanStaleness + c.PenaltyHalfLife)
	}
	bonus := 0.0
	if c.NoiseBonus > 0 && c.NoiseBonusSaturation > 0 {
		bonus = c.NoiseBonus * meanStaleness / (meanStaleness + c.NoiseBonusSaturation)
	}
	plateau := c.PeakAccuracy - penalty + bonus
	if !bounded {
		plateau -= c.UnboundedPenalty
	}
	if plateau < c.FloorAccuracy {
		plateau = c.FloorAccuracy
	}
	return plateau
}

// UpdateQuality returns the effective-progress contribution of one update
// with the given staleness.
func (c ConvergenceSpec) UpdateQuality(staleness int) float64 {
	if staleness < 0 {
		staleness = 0
	}
	return 1.0 / (1.0 + c.StalenessQuality*float64(staleness))
}

// AccuracyCurve converts a run's update trace into a test-accuracy time
// series with roughly `points` samples. totalPlanned is the number of updates
// a full training run applies (iterations per worker × workers); it
// normalizes progress so that runs of different lengths are comparable.
func AccuracyCurve(spec ConvergenceSpec, run *RunResult, totalPlanned, points int) *metrics.TimeSeries {
	series := metrics.NewTimeSeries(run.Label)
	if totalPlanned <= 0 || len(run.Updates) == 0 {
		return series
	}
	if points < 2 {
		points = 2
	}
	stride := len(run.Updates) / points
	if stride < 1 {
		stride = 1
	}

	plateau := spec.Plateau(run.MeanStaleness(), run.Bounded)

	progress := 0.0
	for i, u := range run.Updates {
		progress += spec.UpdateQuality(u.Staleness)
		if i%stride == 0 || i == len(run.Updates)-1 {
			normalized := progress / float64(totalPlanned)
			acc := spec.FloorAccuracy + (plateau-spec.FloorAccuracy)*(1-math.Exp(-spec.ProgressRate*normalized))
			series.Add(u.At, acc)
		}
	}
	return series
}

// AverageSeries returns the point-wise average of several accuracy curves,
// sampled at `points` times spanning the longest curve. It reproduces the
// "Average SSP s=3 to 15" curves of Figure 3.
func AverageSeries(name string, curves []*metrics.TimeSeries, points int) *metrics.TimeSeries {
	out := metrics.NewTimeSeries(name)
	if len(curves) == 0 || points <= 0 {
		return out
	}
	var maxEnd time.Duration
	for _, c := range curves {
		if last, ok := c.Last(); ok && last.Elapsed > maxEnd {
			maxEnd = last.Elapsed
		}
	}
	if maxEnd == 0 {
		return out
	}
	for i := 1; i <= points; i++ {
		t := time.Duration(int64(maxEnd) * int64(i) / int64(points))
		sum := 0.0
		n := 0
		for _, c := range curves {
			if v, ok := c.ValueAt(t); ok {
				sum += v
				n++
			} else if last, ok := c.Last(); ok && t > last.Elapsed {
				sum += last.Value
				n++
			}
		}
		if n > 0 {
			out.Add(t, sum/float64(n))
		}
	}
	return out
}
