package simulate

import (
	"testing"
	"time"

	"dssp/internal/core"
)

// quickRun simulates a small run with the given policy on the given cluster.
func quickRun(t *testing.T, model ModelProfile, cluster ClusterSpec, policy core.PolicyConfig, iters int) *RunResult {
	t.Helper()
	run, err := Run(RunConfig{
		Model:               model,
		Cluster:             cluster,
		Policy:              policy,
		IterationsPerWorker: iters,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestRunValidation(t *testing.T) {
	valid := RunConfig{
		Model:               ModelResNet50,
		Cluster:             HomogeneousCluster(2),
		Policy:              core.PolicyConfig{Paradigm: core.ParadigmASP},
		IterationsPerWorker: 10,
	}
	cases := []func(*RunConfig){
		func(c *RunConfig) { c.Cluster.Workers = nil },
		func(c *RunConfig) { c.IterationsPerWorker = 0 },
		func(c *RunConfig) { c.Cluster.LinkBandwidth = 0 },
		func(c *RunConfig) { c.Cluster.ApplyRate = 0 },
		func(c *RunConfig) { c.Policy = core.PolicyConfig{Paradigm: core.Paradigm(99)} },
	}
	for i, mutate := range cases {
		cfg := valid
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunAppliesEveryPlannedUpdate(t *testing.T) {
	const iters = 50
	for _, paradigm := range []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmASP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12},
	} {
		run := quickRun(t, ModelResNet50, HomogeneousCluster(4), paradigm, iters)
		if got := len(run.Updates); got != iters*4 {
			t.Errorf("%s: applied %d updates, want %d", paradigm.Describe(), got, iters*4)
		}
		if run.Finish <= 0 {
			t.Errorf("%s: finish time not recorded", paradigm.Describe())
		}
		if run.DroppedUpdates != 0 {
			t.Errorf("%s: unexpected dropped updates", paradigm.Describe())
		}
	}
}

func TestRunUpdatesAreTimeOrdered(t *testing.T) {
	run := quickRun(t, ModelAlexNetSmall, HomogeneousCluster(4),
		core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 5}, 100)
	for i := 1; i < len(run.Updates); i++ {
		if run.Updates[i].At < run.Updates[i-1].At {
			t.Fatalf("updates out of order at %d", i)
		}
	}
	if last := run.Updates[len(run.Updates)-1].At; last > run.Finish {
		t.Fatalf("last update at %v after finish %v", last, run.Finish)
	}
}

func TestRunBSPStalenessStaysWithinRound(t *testing.T) {
	run := quickRun(t, ModelResNet50, HomogeneousCluster(4),
		core.PolicyConfig{Paradigm: core.ParadigmBSP}, 60)
	// Within a barrier round the k-th applied update sees at most k-1 newer
	// updates, so staleness is bounded by workers-1.
	if run.Staleness.Max() > 3 {
		t.Fatalf("BSP max staleness %d exceeds workers-1", run.Staleness.Max())
	}
	if !run.Bounded {
		t.Fatal("BSP must be reported as bounded")
	}
}

func TestRunASPIsUnboundedAndNeverWaitsForPeers(t *testing.T) {
	run := quickRun(t, ModelResNet110, HeterogeneousCluster(),
		core.PolicyConfig{Paradigm: core.ParadigmASP}, 200)
	if run.Bounded {
		t.Fatal("ASP must be reported as unbounded")
	}
	// Under ASP the only "waiting" is server processing latency, identical
	// for both workers; synchronization never adds to it, so the fast worker
	// cannot wait much more than the slow one.
	fast, slow := run.Waits[0], run.Waits[1]
	if fast > slow*2 {
		t.Fatalf("ASP fast-worker wait %v is disproportionate to slow-worker wait %v", fast, slow)
	}
}

func TestRunHeterogeneousSSPThrottlesFastWorker(t *testing.T) {
	ssp := quickRun(t, ModelResNet110, HeterogeneousCluster(),
		core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3}, 300)
	asp := quickRun(t, ModelResNet110, HeterogeneousCluster(),
		core.PolicyConfig{Paradigm: core.ParadigmASP}, 300)
	// The fast worker (index 0, GTX1080Ti) must wait far longer under SSP
	// than under ASP.
	if ssp.Waits[0] < 3*asp.Waits[0] {
		t.Fatalf("SSP fast-worker wait %v not substantially larger than ASP %v", ssp.Waits[0], asp.Waits[0])
	}
}

func TestRunHeterogeneousDSSPTracksASPNotSSP(t *testing.T) {
	// The paper's §V-D observation: on the mixed-GPU cluster DSSP's fast
	// worker is barely throttled (close to ASP), unlike SSP.
	cluster := HeterogeneousCluster()
	const iters = 400
	asp := quickRun(t, ModelResNet110, cluster, core.PolicyConfig{Paradigm: core.ParadigmASP}, iters)
	dssp := quickRun(t, ModelResNet110, cluster, core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12}, iters)
	ssp := quickRun(t, ModelResNet110, cluster, core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 15}, iters)

	if dssp.Waits[0] > 2*asp.Waits[0] {
		t.Fatalf("DSSP fast-worker wait %v far exceeds ASP %v", dssp.Waits[0], asp.Waits[0])
	}
	if dssp.Waits[0] > ssp.Waits[0]/2 {
		t.Fatalf("DSSP fast-worker wait %v not well below SSP(15) %v", dssp.Waits[0], ssp.Waits[0])
	}
}

func TestRunEnforcedDSSPBehavesLikeBoundedSSP(t *testing.T) {
	cluster := HeterogeneousCluster()
	const iters = 400
	enforced := quickRun(t, ModelResNet110, cluster,
		core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12, EnforceBound: true}, iters)
	ssp := quickRun(t, ModelResNet110, cluster,
		core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 15}, iters)
	// In the Theorem-2 mode the fast worker is throttled to the same order
	// of waiting as SSP at the upper threshold.
	if enforced.Waits[0] < ssp.Waits[0]/4 {
		t.Fatalf("enforced DSSP wait %v suspiciously small versus SSP(15) %v", enforced.Waits[0], ssp.Waits[0])
	}
}

func TestRunBackupBSPDropsStragglerUpdates(t *testing.T) {
	run := quickRun(t, ModelResNet50, HeterogeneousCluster(),
		core.PolicyConfig{Paradigm: core.ParadigmBackupBSP, Backups: 1}, 100)
	if run.DroppedUpdates == 0 {
		t.Fatal("expected the slow worker's updates to be dropped sometimes")
	}
	if len(run.Updates)+run.DroppedUpdates != 200 {
		t.Fatalf("applied %d + dropped %d != 200 pushes", len(run.Updates), run.DroppedUpdates)
	}
}

func TestRunCommunicationBoundVsComputeBoundWallClock(t *testing.T) {
	// §V-C: on the FC-heavy AlexNet, synchronous bursts make BSP the slowest
	// paradigm; on the compute-heavy ResNets the per-push server cost makes
	// the asynchronous paradigms slower, so BSP finishes first.
	const iters = 200
	cluster := HomogeneousCluster(4)

	alexBSP := quickRun(t, ModelAlexNetSmall, cluster, core.PolicyConfig{Paradigm: core.ParadigmBSP}, iters)
	alexASP := quickRun(t, ModelAlexNetSmall, cluster, core.PolicyConfig{Paradigm: core.ParadigmASP}, iters)
	if alexBSP.Finish <= alexASP.Finish {
		t.Fatalf("AlexNet: BSP (%v) should finish later than ASP (%v)", alexBSP.Finish, alexASP.Finish)
	}

	resBSP := quickRun(t, ModelResNet110, cluster, core.PolicyConfig{Paradigm: core.ParadigmBSP}, iters)
	resASP := quickRun(t, ModelResNet110, cluster, core.PolicyConfig{Paradigm: core.ParadigmASP}, iters)
	if resBSP.Finish >= resASP.Finish {
		t.Fatalf("ResNet-110: BSP (%v) should finish before ASP (%v)", resBSP.Finish, resASP.Finish)
	}
}

func TestRunHeterogeneousFinishDominatedBySlowWorker(t *testing.T) {
	// The GTX1060 worker determines completion of the fixed per-worker quota
	// regardless of paradigm, so finish times are within ~10% of each other.
	cluster := HeterogeneousCluster()
	const iters = 300
	var times []time.Duration
	for _, p := range []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmASP},
		{Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12},
	} {
		times = append(times, quickRun(t, ModelResNet110, cluster, p, iters).Finish)
	}
	for _, d := range times[1:] {
		ratio := float64(d) / float64(times[0])
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("finish times diverge too much: %v", times)
		}
	}
}

func TestPaperEpochIterations(t *testing.T) {
	if got := PaperEpochIterations(300, 4); got != 97*300 {
		t.Fatalf("4-worker iterations = %d, want %d", got, 97*300)
	}
	if got := PaperEpochIterations(1, 1000); got < 1 {
		t.Fatal("iterations must be at least 1 per epoch")
	}
}

func TestGPUAndModelProfiles(t *testing.T) {
	if GPUP100.Speed <= GPUGTX1080Ti.Speed || GPUGTX1080Ti.Speed <= GPUGTX1060.Speed {
		t.Fatal("GPU speed ordering wrong")
	}
	if !ModelAlexNetSmall.HasFullyConnected || ModelResNet50.HasFullyConnected || ModelResNet110.HasFullyConnected {
		t.Fatal("fully-connected flags wrong")
	}
	// The compute/communication contrast at the heart of §V-C: AlexNet moves
	// more bytes per unit of compute than the ResNets.
	alexRatio := float64(ModelAlexNetSmall.Bytes()) / ModelAlexNetSmall.ComputeTime.Seconds()
	resRatio := float64(ModelResNet110.Bytes()) / ModelResNet110.ComputeTime.Seconds()
	if alexRatio < 10*resRatio {
		t.Fatalf("AlexNet comm/compute ratio %v not much larger than ResNet-110 %v", alexRatio, resRatio)
	}
	if HomogeneousCluster(4).NumWorkers() != 4 || HeterogeneousCluster().NumWorkers() != 2 {
		t.Fatal("cluster sizes wrong")
	}
}
