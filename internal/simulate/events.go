package simulate

import (
	"fmt"
	"time"

	"dssp/internal/core"
)

// EventKind identifies one kind of scheduled mid-run perturbation.
type EventKind int

const (
	// EventCrash stops the worker: its in-flight push or pull is lost and
	// the policy is told it left. Unlike the legacy Failures API, the
	// worker's remaining iteration budget is preserved so a later
	// EventRejoin can resume it.
	EventCrash EventKind = iota + 1
	// EventRejoin brings a previously crashed worker back: the policy is
	// told it joined, it pulls fresh weights and resumes its remaining
	// iterations. A rejoin for a live worker is ignored.
	EventRejoin
	// EventDelayShift multiplies the worker's compute time by Factor from
	// this point on (2 = half speed, 0.5 = twice as fast) — a GPU being
	// throttled or recovering mid-run.
	EventDelayShift
	// EventAdversary switches the worker's adversary behaviour to
	// Adversary (AdversaryNone reforms it) — a compromised worker turning
	// hostile mid-run, or an attack burst ending.
	EventAdversary
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRejoin:
		return "rejoin"
	case EventDelayShift:
		return "delay-shift"
	case EventAdversary:
		return "adversary"
	default:
		return "unknown"
	}
}

// Event is one scheduled perturbation of a simulated run. The zero Kind is
// invalid; construct events with explicit kinds (or via the Crash/Rejoin
// helpers).
type Event struct {
	// At is the elapsed simulated time the event fires.
	At time.Duration
	// Worker is the worker the event applies to.
	Worker int
	// Kind selects the perturbation.
	Kind EventKind
	// Factor is the compute-time multiplier for EventDelayShift (must be
	// positive); ignored otherwise.
	Factor float64
	// Adversary is the behaviour installed by EventAdversary; ignored
	// otherwise.
	Adversary AdversaryKind
}

// Crash returns an EventCrash for worker w at time at.
func Crash(w int, at time.Duration) Event {
	return Event{At: at, Worker: w, Kind: EventCrash}
}

// Rejoin returns an EventRejoin for worker w at time at.
func Rejoin(w int, at time.Duration) Event {
	return Event{At: at, Worker: w, Kind: EventRejoin}
}

// validate checks one event against the cluster size.
func (e Event) validate(workers int) error {
	if e.Worker < 0 || e.Worker >= workers {
		return fmt.Errorf("simulate: event names worker %d outside [0,%d)", e.Worker, workers)
	}
	switch e.Kind {
	case EventCrash, EventRejoin, EventAdversary:
	case EventDelayShift:
		if e.Factor <= 0 {
			return fmt.Errorf("simulate: delay-shift for worker %d needs a positive factor, got %g", e.Worker, e.Factor)
		}
	default:
		return fmt.Errorf("simulate: event for worker %d has unknown kind %d", e.Worker, int(e.Kind))
	}
	return nil
}

// AdversaryKind is a clock-level Byzantine behaviour a simulated worker can
// exhibit. Gradient-value attacks (scaling, sign flips) are the real
// trainer's domain; the simulator models the attacks visible in the
// push/pull event stream, the ones core.ClockMonitor detects.
type AdversaryKind int

const (
	// AdversaryNone is honest behaviour.
	AdversaryNone AdversaryKind = iota
	// AdversaryLyingClock pushes with a claimed base version the server
	// never produced, to appear fresher than possible.
	AdversaryLyingClock
	// AdversaryPushFlood pushes floodBurst copies of every gradient
	// without pulling in between, to dominate aggregation windows.
	AdversaryPushFlood
)

// floodBurst is how many pushes an AdversaryPushFlood worker emits per
// compute phase — comfortably above core.DefaultFloodSlack so a guard with
// default settings flags it.
const floodBurst = core.DefaultFloodSlack + 2

// lieAhead is how far past the server's version a lying clock claims.
const lieAhead = 1 << 20

// String names the adversary.
func (a AdversaryKind) String() string {
	switch a {
	case AdversaryNone:
		return "none"
	case AdversaryLyingClock:
		return "lying-clock"
	case AdversaryPushFlood:
		return "push-flood"
	default:
		return "unknown"
	}
}

// GuardSpec enables the simulated server's anomaly guard, the
// ClockMonitor-backed counterpart of the real server's GuardConfig: flagged
// pushes are dropped (the policy still releases workers) and a worker
// reaching MaxStrikes flags is evicted like a crash.
type GuardSpec struct {
	// Enabled turns the guard on.
	Enabled bool
	// MaxStrikes is how many flags evict a worker; 0 selects 3.
	MaxStrikes int
	// FloodSlack is pushes-per-pull before a flood flag; 0 selects
	// core.DefaultFloodSlack.
	FloodSlack int
}

// normalized maps zero values onto their explicit form.
func (g GuardSpec) normalized() GuardSpec {
	if !g.Enabled {
		return GuardSpec{}
	}
	if g.MaxStrikes <= 0 {
		g.MaxStrikes = 3
	}
	if g.FloodSlack <= 0 {
		g.FloodSlack = core.DefaultFloodSlack
	}
	return g
}
