package simulate

import (
	"testing"
	"time"

	"dssp/internal/core"
)

// fanoutRun simulates a run through the relay tier.
func fanoutRun(t *testing.T, policy core.PolicyConfig, workers, iters, fanout int, events ...Event) *RunResult {
	t.Helper()
	run, err := Run(RunConfig{
		Model:               ModelResNet50,
		Cluster:             HomogeneousCluster(workers),
		Policy:              policy,
		IterationsPerWorker: iters,
		Fanout:              fanout,
		Events:              events,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestFanoutPreservesEveryLogicalPush pins the tier's semantic claim in the
// simulator: relayed runs apply exactly as many updates as flat ones — the
// relay batches frames, it does not eat pushes.
func TestFanoutPreservesEveryLogicalPush(t *testing.T) {
	const workers, iters = 8, 40
	for _, policy := range []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmSSP, Staleness: 3},
		{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4},
	} {
		run := fanoutRun(t, policy, workers, iters, 4)
		if got := len(run.Updates) + run.DroppedUpdates; got != workers*iters {
			t.Errorf("%s: %d updates + %d dropped, want %d logical pushes",
				policy.Describe(), len(run.Updates), run.DroppedUpdates, workers*iters)
		}
	}
}

// TestFanoutCutsRootIngress is the simulator-side headline: the same
// workload at fanout 4 lands far fewer (and smaller in aggregate) push
// frames on the root than flat, without losing updates.
func TestFanoutCutsRootIngress(t *testing.T) {
	const workers, iters = 8, 40
	policy := core.PolicyConfig{Paradigm: core.ParadigmSSP, Staleness: 3}
	flat := fanoutRun(t, policy, workers, iters, 0)
	tree := fanoutRun(t, policy, workers, iters, 4)

	if flat.RootIngressFrames != workers*iters {
		t.Fatalf("flat root ingress %d frames, want %d", flat.RootIngressFrames, workers*iters)
	}
	if tree.RootIngressFrames*3 > flat.RootIngressFrames {
		t.Errorf("fanout-4 root ingress %d frames vs flat %d: want >= 3x reduction",
			tree.RootIngressFrames, flat.RootIngressFrames)
	}
	if tree.RootIngressBytes*2 > flat.RootIngressBytes {
		t.Errorf("fanout-4 root ingress %d bytes vs flat %d: want >= 2x reduction",
			tree.RootIngressBytes, flat.RootIngressBytes)
	}
	if len(tree.Updates) != len(flat.Updates) {
		t.Errorf("fanout run applied %d updates, flat %d", len(tree.Updates), len(flat.Updates))
	}
}

// TestFanoutSurvivesMemberCrash crashes one group member mid-run: the
// remaining workers finish, and every push is either applied or accounted
// dropped — nothing wedges inside a half-full partial.
func TestFanoutSurvivesMemberCrash(t *testing.T) {
	const workers, iters = 8, 40
	policy := core.PolicyConfig{Paradigm: core.ParadigmDSSP, Staleness: 1, Range: 4}
	run := fanoutRun(t, policy, workers, iters, 4, Crash(1, 200*time.Millisecond))

	if run.Finish <= 0 {
		t.Fatal("run never finished")
	}
	planned := workers * iters
	if got := len(run.Updates) + run.DroppedUpdates; got > planned {
		t.Errorf("%d updates + %d dropped exceeds %d planned pushes", len(run.Updates), run.DroppedUpdates, planned)
	}
	// The seven survivors complete their full budget.
	perWorker := make(map[int]int, workers)
	for _, u := range run.Updates {
		perWorker[u.Worker]++
	}
	for w := 0; w < workers; w++ {
		if w == 1 {
			continue
		}
		if perWorker[w] == 0 {
			t.Errorf("surviving worker %d applied no updates", w)
		}
	}
}

// TestFanoutRejectsGuard mirrors the real root's relay admission: a summed
// partial hides per-worker clocks, so the guard and the tier are exclusive.
func TestFanoutRejectsGuard(t *testing.T) {
	_, err := Run(RunConfig{
		Model:               ModelResNet50,
		Cluster:             HomogeneousCluster(4),
		Policy:              core.PolicyConfig{Paradigm: core.ParadigmASP},
		IterationsPerWorker: 5,
		Fanout:              2,
		Guard:               GuardSpec{Enabled: true},
	})
	if err == nil {
		t.Fatal("expected fanout + guard to be rejected")
	}
}
