package simulate

import (
	"testing"
	"time"

	"dssp/internal/metrics"
)

func testSpec() ConvergenceSpec {
	return ConvergenceSpec{
		FloorAccuracy:        0.1,
		PeakAccuracy:         0.7,
		ProgressRate:         5,
		StalenessQuality:     0.02,
		StalenessPenalty:     0.1,
		PenaltyHalfLife:      5,
		NoiseBonus:           0.02,
		NoiseBonusSaturation: 2,
		UnboundedPenalty:     0.03,
	}
}

func TestPlateauDecreasesWithStalenessWhenPenaltyDominates(t *testing.T) {
	spec := testSpec()
	spec.NoiseBonus = 0
	prev := spec.Plateau(0, true)
	for s := 1.0; s <= 50; s += 5 {
		p := spec.Plateau(s, true)
		if p > prev {
			t.Fatalf("plateau increased at staleness %v", s)
		}
		prev = p
	}
	if spec.Plateau(1000, true) < spec.FloorAccuracy {
		t.Fatal("plateau fell below the floor")
	}
}

func TestPlateauNoiseBonusHelpsConvOnlyModels(t *testing.T) {
	spec := ModelResNet110.Convergence
	if spec.Plateau(3, true) <= spec.Plateau(0.2, true) {
		t.Fatal("moderate staleness should raise the conv-only plateau (paper §V-C)")
	}
	alex := ModelAlexNetSmall.Convergence
	if alex.Plateau(3, true) >= alex.Plateau(0.5, true) {
		t.Fatal("staleness must lower the FC-model plateau")
	}
}

func TestPlateauUnboundedPenaltyAppliesOnlyToUnboundedRuns(t *testing.T) {
	spec := testSpec()
	bounded := spec.Plateau(2, true)
	unbounded := spec.Plateau(2, false)
	if unbounded >= bounded {
		t.Fatalf("unbounded plateau %v should be below bounded %v", unbounded, bounded)
	}
}

func TestUpdateQualityDecreasesWithStaleness(t *testing.T) {
	spec := testSpec()
	if spec.UpdateQuality(0) != 1 {
		t.Fatal("fresh update quality must be 1")
	}
	if spec.UpdateQuality(-5) != 1 {
		t.Fatal("negative staleness clamps to fresh")
	}
	if spec.UpdateQuality(10) >= spec.UpdateQuality(1) {
		t.Fatal("staler updates must contribute less")
	}
}

func TestAccuracyCurveIsMonotoneAndBelowPlateau(t *testing.T) {
	spec := testSpec()
	run := &RunResult{Label: "x", Staleness: metrics.NewHistogram(), Bounded: true}
	for i := 0; i < 1000; i++ {
		run.Updates = append(run.Updates, UpdateEvent{At: time.Duration(i) * time.Second, Worker: i % 4, Staleness: i % 5})
		run.Staleness.Observe(i % 5)
	}
	curve := AccuracyCurve(spec, run, 1000, 40)
	if curve.Len() < 2 {
		t.Fatalf("curve has %d points", curve.Len())
	}
	pts := curve.Points()
	plateau := spec.Plateau(run.MeanStaleness(), true)
	prev := 0.0
	for i, p := range pts {
		if p.Value < prev-1e-9 {
			t.Fatalf("accuracy decreased at point %d", i)
		}
		if p.Value > plateau+1e-9 {
			t.Fatalf("accuracy %v exceeded plateau %v", p.Value, plateau)
		}
		prev = p.Value
	}
	if final := pts[len(pts)-1].Value; final < 0.9*plateau {
		t.Fatalf("final accuracy %v did not approach the plateau %v", final, plateau)
	}
}

func TestAccuracyCurveEmptyInputs(t *testing.T) {
	spec := testSpec()
	empty := &RunResult{Label: "x", Staleness: metrics.NewHistogram()}
	if AccuracyCurve(spec, empty, 100, 10).Len() != 0 {
		t.Fatal("empty run should give an empty curve")
	}
	run := &RunResult{Label: "x", Staleness: metrics.NewHistogram(),
		Updates: []UpdateEvent{{At: time.Second}}}
	if AccuracyCurve(spec, run, 0, 10).Len() != 0 {
		t.Fatal("zero planned updates should give an empty curve")
	}
}

func TestFresherUpdatesConvergeFasterAtEqualThroughput(t *testing.T) {
	spec := testSpec()
	fresh := &RunResult{Label: "fresh", Staleness: metrics.NewHistogram(), Bounded: true}
	stale := &RunResult{Label: "stale", Staleness: metrics.NewHistogram(), Bounded: true}
	for i := 0; i < 500; i++ {
		at := time.Duration(i) * time.Second
		fresh.Updates = append(fresh.Updates, UpdateEvent{At: at, Staleness: 0})
		fresh.Staleness.Observe(0)
		stale.Updates = append(stale.Updates, UpdateEvent{At: at, Staleness: 40})
		stale.Staleness.Observe(40)
	}
	// Compare progress toward a common reference (ignore plateau effects by
	// reading mid-curve accuracy).
	freshCurve := AccuracyCurve(spec, fresh, 1000, 50)
	staleCurve := AccuracyCurve(spec, stale, 1000, 50)
	fv, ok1 := freshCurve.ValueAt(250 * time.Second)
	sv, ok2 := staleCurve.ValueAt(250 * time.Second)
	if !ok1 || !ok2 {
		t.Fatal("mid-curve values unavailable")
	}
	if fv <= sv {
		t.Fatalf("fresh updates (%v) should outpace stale updates (%v)", fv, sv)
	}
}

func TestAverageSeries(t *testing.T) {
	a := metrics.NewTimeSeries("a")
	b := metrics.NewTimeSeries("b")
	for i := 1; i <= 10; i++ {
		a.Add(time.Duration(i)*time.Second, 0.2)
		b.Add(time.Duration(i)*time.Second, 0.4)
	}
	avg := AverageSeries("avg", []*metrics.TimeSeries{a, b}, 5)
	if avg.Name() != "avg" || avg.Len() != 5 {
		t.Fatalf("unexpected average series %v/%d", avg.Name(), avg.Len())
	}
	for _, p := range avg.Points() {
		if p.Value < 0.299 || p.Value > 0.301 {
			t.Fatalf("average value %v, want 0.3", p.Value)
		}
	}
	if AverageSeries("empty", nil, 5).Len() != 0 {
		t.Fatal("empty input should give empty average")
	}
}
