package simulate

import (
	"testing"
	"time"
)

// shortCfg keeps experiment tests fast; the curve shapes are scale-invariant
// in the number of epochs.
func shortCfg() ExperimentConfig {
	return ExperimentConfig{Epochs: 30, Seed: 1, Points: 50}
}

func TestFigure3aShape(t *testing.T) {
	fig, err := Figure3a(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	bsp, _ := fig.Result("BSP")
	asp, _ := fig.Result("ASP")
	dssp, _ := fig.Result("DSSP s=3 r=12")
	avg, _ := fig.Result("Average SSP s=3 to 15")
	if bsp.Curve == nil || asp.Curve == nil || dssp.Curve == nil || avg.Curve == nil {
		t.Fatal("missing curves")
	}

	// Paper: BSP is the slowest to complete 300 epochs on the FC-heavy model.
	if bsp.Finish <= asp.Run.Finish {
		t.Fatalf("BSP finish %v should exceed ASP finish %v", bsp.Finish, asp.Run.Finish)
	}
	// Paper: ASP converges to the lowest accuracy of the four paradigms.
	if asp.FinalAccuracy >= dssp.FinalAccuracy || asp.FinalAccuracy >= bsp.FinalAccuracy {
		t.Fatalf("ASP final accuracy %v should be the lowest (DSSP %v, BSP %v)",
			asp.FinalAccuracy, dssp.FinalAccuracy, bsp.FinalAccuracy)
	}
	// Paper: DSSP/SSP/ASP converge much faster than BSP to mid-range
	// accuracy; compare time to reach 0.55.
	tt := fig.TimeToAccuracy(0.55)
	if tt["DSSP s=3 r=12"] >= tt["BSP"] {
		t.Fatalf("DSSP should reach 0.55 before BSP: %v vs %v", tt["DSSP s=3 r=12"], tt["BSP"])
	}
	// Paper: DSSP at least matches the averaged SSP.
	if dssp.FinalAccuracy+1e-9 < avg.FinalAccuracy {
		t.Fatalf("DSSP final accuracy %v below averaged SSP %v", dssp.FinalAccuracy, avg.FinalAccuracy)
	}
}

func TestFigure3bDSSPCompetitiveWithSSPSweep(t *testing.T) {
	fig, err := Figure3b(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Results) != 14 { // SSP s=3..15 plus DSSP
		t.Fatalf("expected 14 curves, got %d", len(fig.Results))
	}
	dssp, ok := fig.Result("DSSP s=3 r=12")
	if !ok {
		t.Fatal("DSSP curve missing")
	}
	// DSSP's final accuracy must be at least as high as the majority of the
	// individual SSP thresholds (paper: higher than all but one).
	better := 0
	for _, r := range fig.Results {
		if r.Label == dssp.Label {
			continue
		}
		if dssp.FinalAccuracy+1e-9 >= r.FinalAccuracy {
			better++
		}
	}
	if better < 7 {
		t.Fatalf("DSSP beats only %d of 13 SSP curves", better)
	}
}

func TestFigure3cdResNet50Shape(t *testing.T) {
	fig, err := Figure3c(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	bsp, _ := fig.Result("BSP")
	asp, _ := fig.Result("ASP")
	dssp, _ := fig.Result("DSSP s=3 r=12")
	// Paper: on conv-only models BSP completes 300 epochs first...
	if bsp.Finish >= asp.Run.Finish {
		t.Fatalf("BSP finish %v should be before ASP finish %v", bsp.Finish, asp.Run.Finish)
	}
	// ...but converges to a lower accuracy than the staleness-tolerant
	// paradigms.
	if bsp.FinalAccuracy >= dssp.FinalAccuracy {
		t.Fatalf("BSP final accuracy %v should be below DSSP %v", bsp.FinalAccuracy, dssp.FinalAccuracy)
	}

	sweep, err := Figure3d(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 14 {
		t.Fatalf("expected 14 curves in figure 3d, got %d", len(sweep.Results))
	}
}

func TestFigure3eResNet110Shape(t *testing.T) {
	fig, err := Figure3e(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	bsp, _ := fig.Result("BSP")
	dssp, _ := fig.Result("DSSP s=3 r=12")
	avg, _ := fig.Result("Average SSP s=3 to 15")
	if bsp.FinalAccuracy >= dssp.FinalAccuracy {
		t.Fatalf("BSP final accuracy %v should be below DSSP %v", bsp.FinalAccuracy, dssp.FinalAccuracy)
	}
	if dssp.FinalAccuracy+1e-9 < avg.FinalAccuracy {
		t.Fatalf("DSSP %v should be at least the averaged SSP %v", dssp.FinalAccuracy, avg.FinalAccuracy)
	}
}

func TestFigure4HeterogeneousShape(t *testing.T) {
	fig, err := Figure4(ExperimentConfig{Epochs: 40, Seed: 1, Points: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Results) != 6 {
		t.Fatalf("expected 6 curves, got %d", len(fig.Results))
	}
	// Pick a mid-range target every curve reaches and compare times: DSSP
	// must be far faster than every SSP threshold and BSP, and close to ASP
	// (paper Table I and Figure 4).
	tt := fig.TimeToAccuracy(0.60)
	for _, label := range []string{"BSP", "ASP", "SSP s=3", "SSP s=6", "SSP s=15", "DSSP s=3 r=12"} {
		if _, ok := tt[label]; !ok {
			t.Fatalf("curve %q never reached 0.60", label)
		}
	}
	dssp, asp := tt["DSSP s=3 r=12"], tt["ASP"]
	for _, label := range []string{"BSP", "SSP s=3", "SSP s=6", "SSP s=15"} {
		if float64(tt[label]) < 1.25*float64(dssp) {
			t.Fatalf("%s (%v) should be at least 25%% slower than DSSP (%v) to reach 0.60", label, tt[label], dssp)
		}
	}
	ratio := float64(dssp) / float64(asp)
	if ratio > 1.25 {
		t.Fatalf("DSSP (%v) should track ASP (%v) on the heterogeneous cluster", dssp, asp)
	}
}

func TestTableIRowsAndOrdering(t *testing.T) {
	rows, err := TableI(ExperimentConfig{Epochs: 40, Seed: 1, Points: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	byLabel := map[string]TableIRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	dssp := byLabel["DSSP s=3 r=12"]
	if !dssp.Reached067 {
		t.Fatal("DSSP should reach 0.67 accuracy")
	}
	for _, label := range []string{"SSP s=3", "SSP s=6", "SSP s=15", "BSP"} {
		row := byLabel[label]
		if row.Reached067 && row.To067 < dssp.To067 {
			t.Fatalf("%s reached 0.67 before DSSP (%v vs %v)", label, row.To067, dssp.To067)
		}
	}
}

func TestSectionVCThroughputTrends(t *testing.T) {
	trends, err := SectionVCThroughputTrends(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 3 {
		t.Fatalf("expected trends for 3 models, got %d", len(trends))
	}
	for _, tr := range trends {
		bsp, asp := tr.FinishTimes["BSP"], tr.FinishTimes["ASP"]
		if tr.HasFullyConnected {
			// FC-heavy: BSP is the slowest to complete.
			if bsp <= asp {
				t.Errorf("%s: BSP (%v) should be slower than ASP (%v)", tr.Model, bsp, asp)
			}
		} else {
			// Conv-only: BSP completes first.
			if bsp >= asp {
				t.Errorf("%s: BSP (%v) should be faster than ASP (%v)", tr.Model, bsp, asp)
			}
		}
	}
}

func TestFigure2WaitsSelectsLowWaitPoint(t *testing.T) {
	waits, rStar, err := Figure2Waits(time.Second, 3500*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(waits) != 9 {
		t.Fatalf("expected 9 wait predictions, got %d", len(waits))
	}
	if rStar < 0 || rStar > 8 {
		t.Fatalf("r* = %d out of range", rStar)
	}
	for r, w := range waits {
		if w < waits[rStar] {
			t.Fatalf("controller chose r*=%d (wait %v) but r=%d waits only %v", rStar, waits[rStar], r, w)
		}
	}
	if _, _, err := Figure2Waits(0, time.Second, 4); err == nil {
		t.Fatal("expected error for non-positive interval")
	}
}

func TestExperimentConfigDefaults(t *testing.T) {
	def := DefaultExperimentConfig()
	if def.Epochs != 300 {
		t.Fatalf("default epochs = %d, want 300 (paper setting)", def.Epochs)
	}
	filled := ExperimentConfig{}.withDefaults()
	if filled.Epochs != 300 || filled.Points <= 0 {
		t.Fatalf("withDefaults produced %+v", filled)
	}
}

func TestFigureResultLookup(t *testing.T) {
	fig := &Figure{Results: []ParadigmResult{{Label: "BSP"}}}
	if _, ok := fig.Result("BSP"); !ok {
		t.Fatal("existing label not found")
	}
	if _, ok := fig.Result("nope"); ok {
		t.Fatal("missing label reported as found")
	}
}
