package simulate

import (
	"testing"
	"time"

	"dssp/internal/core"
)

// failureRun executes a 4-worker run where worker 3 crashes early, and
// returns the per-worker applied-update counts.
func failureRun(t *testing.T, policy core.PolicyConfig) (*RunResult, []int) {
	t.Helper()
	cfg := RunConfig{
		Model:               ModelProfile{Name: "tiny", Params: 1e5, ComputeTime: 10 * time.Millisecond, Layers: 4},
		Cluster:             HomogeneousCluster(4),
		Policy:              policy,
		IterationsPerWorker: 40,
		Failures:            []WorkerFailure{{Worker: 3, At: 120 * time.Millisecond}},
		Seed:                7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	counts := make([]int, 4)
	for _, u := range res.Updates {
		counts[u.Worker]++
	}
	return res, counts
}

func TestSimulatedFailureDoesNotStallAnyParadigm(t *testing.T) {
	policies := []core.PolicyConfig{
		{Paradigm: core.ParadigmBSP},
		{Paradigm: core.ParadigmASP},
		{Paradigm: core.ParadigmSSP, Staleness: 2},
		{Paradigm: core.ParadigmDSSP, Staleness: 2, Range: 4},
		{Paradigm: core.ParadigmBoundedDelay, Staleness: 3},
		{Paradigm: core.ParadigmBackupBSP, Backups: 1},
	}
	for _, p := range policies {
		p := p
		t.Run(p.Describe(), func(t *testing.T) {
			res, counts := failureRun(t, p)
			// Every surviving worker must complete all of its iterations:
			// without OnLeave, the barrier paradigms would strand them
			// waiting on the crashed worker forever.
			for w := 0; w < 3; w++ {
				want := 40
				if p.Paradigm == core.ParadigmBackupBSP {
					// Straggler pushes are dropped, not applied.
					want = 40 - res.DroppedUpdates
					if counts[w] < want {
						t.Errorf("worker %d applied %d updates, want >= %d", w, counts[w], want)
					}
					continue
				}
				if counts[w] != want {
					t.Errorf("worker %d applied %d updates, want %d", w, counts[w], want)
				}
			}
			// The crashed worker got at most a handful of updates in.
			if counts[3] >= 40 {
				t.Errorf("crashed worker applied %d updates", counts[3])
			}
			if res.Finish <= 0 {
				t.Errorf("run never finished")
			}
		})
	}
}

func TestFailureAfterFinishIsIgnored(t *testing.T) {
	cfg := RunConfig{
		Model:               ModelProfile{Name: "tiny", Params: 1e5, ComputeTime: time.Millisecond, Layers: 4},
		Cluster:             HomogeneousCluster(2),
		Policy:              core.PolicyConfig{Paradigm: core.ParadigmBSP},
		IterationsPerWorker: 3,
		Failures:            []WorkerFailure{{Worker: 1, At: time.Hour}},
		Seed:                1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(res.Updates); got != 6 {
		t.Fatalf("applied %d updates, want 6", got)
	}
}

func TestFailureValidation(t *testing.T) {
	cfg := RunConfig{
		Model:               ModelProfile{Name: "tiny", Params: 1e5, ComputeTime: time.Millisecond, Layers: 4},
		Cluster:             HomogeneousCluster(2),
		Policy:              core.PolicyConfig{Paradigm: core.ParadigmBSP},
		IterationsPerWorker: 3,
		Failures:            []WorkerFailure{{Worker: 9, At: time.Second}},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range failure worker was accepted")
	}
}
