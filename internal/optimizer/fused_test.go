package optimizer

import (
	"math/rand"
	"testing"

	"dssp/internal/tensor"
)

func randParams(rng *rand.Rand, shapes [][]int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		out[i] = tensor.New(s...).RandNormal(rng, 0, 1)
	}
	return out
}

// referenceApply is the unfused path the store used before the fused step:
// clone the parameters, sum the batch in order with sequential element-wise
// adds, and call Step on the clone. StepInto must match it bit for bit.
func referenceApply(opt *SGD, params []*tensor.Tensor, batch [][]*tensor.Tensor) []*tensor.Tensor {
	next := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		next[i] = p.Clone()
	}
	sum := make([]*tensor.Tensor, len(params))
	for i, g := range batch[0] {
		sum[i] = g.Clone()
	}
	for _, grads := range batch[1:] {
		for i, g := range grads {
			sum[i].Add(g)
		}
	}
	opt.Step(next, sum)
	return next
}

func TestStepIntoBitIdenticalToCloneSumStep(t *testing.T) {
	shapes := [][]int{{7, 5}, {16}, {3, 3, 2}, {1}}
	for _, tc := range []struct {
		name string
		mk   func() *SGD
	}{
		{"plain", func() *SGD { return NewSGD(0.1) }},
		{"momentum+decay", func() *SGD { return NewSGDMomentum(0.05, 0.9, 1e-4) }},
		{"decay-only", func() *SGD { return NewSGDMomentum(0.05, 0, 5e-4) }},
	} {
		for batchSize := 1; batchSize <= 6; batchSize++ {
			rng := rand.New(rand.NewSource(int64(batchSize)))
			params := randParams(rng, shapes)
			batches := make([][][]*tensor.Tensor, 3)
			for r := range batches {
				batch := make([][]*tensor.Tensor, batchSize)
				for b := range batch {
					batch[b] = randParams(rng, shapes)
				}
				batches[r] = batch
			}

			fused := tc.mk()
			unfused := tc.mk()
			cur := params
			ref := params
			// Run several rounds so momentum state feeds forward through
			// both paths, then compare parameters and velocity exactly.
			for r, batch := range batches {
				next := make([]*tensor.Tensor, len(cur))
				for i, p := range cur {
					next[i] = tensor.New(p.Shape()...)
				}
				fused.StepInto(next, cur, batch)
				cur = next
				ref = referenceApply(unfused, ref, batch)
				for i := range cur {
					if !cur[i].ApproxEqual(ref[i], 0) {
						t.Fatalf("%s k=%d round %d: param %d differs from reference", tc.name, batchSize, r, i)
					}
				}
			}
			fs, us := fused.State(), unfused.State()
			if (fs == nil) != (us == nil) {
				t.Fatalf("%s k=%d: velocity presence differs", tc.name, batchSize)
			}
			for i := range fs {
				for j := range fs[i] {
					if fs[i][j] != us[i][j] {
						t.Fatalf("%s k=%d: velocity[%d][%d] differs", tc.name, batchSize, i, j)
					}
				}
			}
		}
	}
}

func TestStepIntoInPlaceAliasing(t *testing.T) {
	// dst aliasing src element-wise must give the same result as a separate
	// destination buffer.
	rng := rand.New(rand.NewSource(42))
	shapes := [][]int{{9, 4}, {11}}
	params := randParams(rng, shapes)
	batch := [][]*tensor.Tensor{randParams(rng, shapes), randParams(rng, shapes)}

	separate := NewSGDMomentum(0.1, 0.9, 1e-4)
	out := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		out[i] = tensor.New(p.Shape()...)
	}
	separate.StepInto(out, params, batch)

	inPlace := NewSGDMomentum(0.1, 0.9, 1e-4)
	aliased := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		aliased[i] = p.Clone()
	}
	inPlace.StepInto(aliased, aliased, batch)

	for i := range out {
		if !out[i].ApproxEqual(aliased[i], 0) {
			t.Fatalf("in-place StepInto differs from separate-buffer result at param %d", i)
		}
	}
}

func TestStepIntoPanicsOnMismatchedInputs(t *testing.T) {
	p := []*tensor.Tensor{tensor.New(2, 2)}
	g := []*tensor.Tensor{tensor.New(2, 2)}
	for name, fn := range map[string]func(){
		"empty batch": func() { NewSGD(0.1).StepInto(p, p, nil) },
		"dst/src len": func() { NewSGD(0.1).StepInto(nil, p, [][]*tensor.Tensor{g}) },
		"grad count":  func() { NewSGD(0.1).StepInto(p, p, [][]*tensor.Tensor{{}}) },
		"grad size": func() {
			NewSGD(0.1).StepInto(p, p, [][]*tensor.Tensor{{tensor.New(3)}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func benchFusedInputs(paramSize, batchSize int) ([]*tensor.Tensor, []*tensor.Tensor, [][]*tensor.Tensor) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][]int{{paramSize}}
	src := randParams(rng, shapes)
	dst := []*tensor.Tensor{tensor.New(paramSize)}
	batch := make([][]*tensor.Tensor, batchSize)
	for b := range batch {
		batch[b] = randParams(rng, shapes)
	}
	return dst, src, batch
}

func BenchmarkFusedStepMomentumBatch4(b *testing.B) {
	dst, src, batch := benchFusedInputs(64*1024, 4)
	opt := NewSGDMomentum(0.05, 0.9, 1e-4)
	opt.StepInto(dst, src, batch) // allocate velocity up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.StepInto(dst, src, batch)
	}
}

func BenchmarkUnfusedStepMomentumBatch4(b *testing.B) {
	// The clone+sum+Step sequence the fused kernel replaces, for comparison.
	_, src, batch := benchFusedInputs(64*1024, 4)
	opt := NewSGDMomentum(0.05, 0.9, 1e-4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceApply(opt, src, batch)
	}
}
