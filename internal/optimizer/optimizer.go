// Package optimizer implements the stochastic-gradient-descent update rules
// used by the paper's experiments: plain SGD and SGD with momentum, both with
// optional weight decay, plus the step learning-rate schedule (decay ×0.1 at
// fixed epochs) used for the ResNet runs.
package optimizer

import (
	"fmt"

	"dssp/internal/tensor"
)

// Optimizer applies parameter updates computed from gradients. In the
// parameter-server architecture the optimizer lives on the server and is
// applied to the globally shared weights whenever a worker pushes gradients.
type Optimizer interface {
	// Step applies one update to params given the aligned grads.
	Step(params, grads []*tensor.Tensor)
	// SetLearningRate changes the learning rate used by subsequent steps.
	SetLearningRate(lr float64)
	// LearningRate returns the current learning rate.
	LearningRate() float64
	// Name returns a short description of the optimizer.
	Name() string
	// Clone returns a fresh optimizer with the same hyperparameters and no
	// accumulated state. The sharded parameter store gives each shard its own
	// clone so that per-parameter state (e.g. momentum velocity) stays aligned
	// with the shard's parameter slice.
	Clone() Optimizer
	// State returns a deep copy of the optimizer's accumulated per-parameter
	// state (momentum velocity for SGD), aligned with the parameter list it
	// has been stepping, or nil when it holds none. Checkpoints persist it so
	// a restored server resumes with the same update dynamics.
	State() [][]float32
	// LoadState replaces the accumulated state with a deep copy of state
	// (nil clears it). The next Step must see parameter tensors whose sizes
	// match the loaded state.
	LoadState(state [][]float32)
}

// FusedStepper is implemented by optimizers that can apply a whole coalesced
// push batch in one fused pass per parameter tensor: gradient summation,
// weight decay, momentum update, and the parameter write happen per element,
// so each gradient value is read exactly once and no summed-gradient or
// cloned-parameter temporary is materialized.
//
// StepInto reads parameters from src and writes the updated values to dst;
// dst may alias src element-wise (in-place update) or be a completely
// separate buffer (the parameter server's copy-on-write publication path).
// batch is a non-empty sequence of aligned gradient sets. The result must be
// bit-identical to cloning src, summing the batch in order with a running
// element-wise accumulation (((b0+b1)+b2)+…), and calling Step on the clone
// — the contract that lets the store switch between the fused and unfused
// paths without changing training dynamics.
type FusedStepper interface {
	StepInto(dst, src []*tensor.Tensor, batch [][]*tensor.Tensor)
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay: v = mu*v + grad + wd*param; param -= lr * v.
type SGD struct {
	lr       float64
	momentum float64
	decay    float64
	velocity [][]float32
	gscratch [][]float32 // reused per-tensor gradient-slice list for StepInto
}

// NewSGD returns a plain SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// NewSGDMomentum returns an SGD optimizer with momentum and weight decay.
func NewSGDMomentum(lr, momentum, weightDecay float64) *SGD {
	return &SGD{lr: lr, momentum: momentum, decay: weightDecay}
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optimizer: %d params but %d grads", len(params), len(grads)))
	}
	if s.momentum > 0 && s.velocity == nil {
		s.velocity = make([][]float32, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float32, p.Size())
		}
	}
	lr := float32(s.lr)
	mu := float32(s.momentum)
	wd := float32(s.decay)
	for i, p := range params {
		pd := p.Data()
		gd := grads[i].Data()
		if len(pd) != len(gd) {
			panic(fmt.Sprintf("optimizer: param %d has %d values but grad has %d", i, len(pd), len(gd)))
		}
		if s.momentum > 0 {
			v := s.velocity[i]
			for j := range pd {
				g := gd[j] + wd*pd[j]
				v[j] = mu*v[j] + g
				pd[j] -= lr * v[j]
			}
		} else {
			for j := range pd {
				g := gd[j] + wd*pd[j]
				pd[j] -= lr * g
			}
		}
	}
}

// StepInto implements FusedStepper for SGD: one pass per parameter tensor
// fuses the batch gradient sum, weight decay, momentum update, and parameter
// write. See the interface for the aliasing and bit-identity contract.
func (s *SGD) StepInto(dst, src []*tensor.Tensor, batch [][]*tensor.Tensor) {
	if len(batch) == 0 {
		panic("optimizer: StepInto needs a non-empty batch")
	}
	if len(dst) != len(src) {
		panic(fmt.Sprintf("optimizer: %d dst tensors but %d src", len(dst), len(src)))
	}
	for _, grads := range batch {
		if len(grads) != len(src) {
			panic(fmt.Sprintf("optimizer: %d params but %d grads", len(src), len(grads)))
		}
	}
	if s.momentum > 0 && s.velocity == nil {
		s.velocity = make([][]float32, len(src))
		for i, p := range src {
			s.velocity[i] = make([]float32, p.Size())
		}
	}
	lr := float32(s.lr)
	mu := float32(s.momentum)
	wd := float32(s.decay)
	if cap(s.gscratch) < len(batch) {
		s.gscratch = make([][]float32, len(batch))
	}
	gs := s.gscratch[:len(batch)]
	for i := range src {
		sd := src[i].Data()
		dd := dst[i].Data()
		if len(dd) != len(sd) {
			panic(fmt.Sprintf("optimizer: param %d has %d values but dst has %d", i, len(sd), len(dd)))
		}
		for b, grads := range batch {
			gd := grads[i].Data()
			if len(gd) != len(sd) {
				panic(fmt.Sprintf("optimizer: param %d has %d values but grad has %d", i, len(sd), len(gd)))
			}
			gs[b] = gd
		}
		if s.momentum > 0 {
			fusedSGDMomentum(dd, sd, s.velocity[i], gs, lr, mu, wd)
		} else {
			fusedSGDPlain(dd, sd, gs, lr, wd)
		}
	}
}

// fusedSGDMomentum applies dst = src - lr·v' with v' = mu·v + (Σgs + wd·src)
// element-wise. The batch sum accumulates in source order, matching a
// sequential copy+Add loop bit for bit. Specialized small-batch bodies keep
// the common coalescing sizes branch-free in the inner loop.
func fusedSGDMomentum(dd, sd, v []float32, gs [][]float32, lr, mu, wd float32) {
	sd = sd[:len(dd)]
	v = v[:len(dd)]
	switch len(gs) {
	case 1:
		g0 := gs[0][:len(dd)]
		for j := range dd {
			g := g0[j] + wd*sd[j]
			vj := mu*v[j] + g
			v[j] = vj
			dd[j] = sd[j] - lr*vj
		}
	case 2:
		g0 := gs[0][:len(dd)]
		g1 := gs[1][:len(dd)]
		for j := range dd {
			g := (g0[j] + g1[j]) + wd*sd[j]
			vj := mu*v[j] + g
			v[j] = vj
			dd[j] = sd[j] - lr*vj
		}
	case 3:
		g0 := gs[0][:len(dd)]
		g1 := gs[1][:len(dd)]
		g2 := gs[2][:len(dd)]
		for j := range dd {
			g := ((g0[j] + g1[j]) + g2[j]) + wd*sd[j]
			vj := mu*v[j] + g
			v[j] = vj
			dd[j] = sd[j] - lr*vj
		}
	case 4:
		g0 := gs[0][:len(dd)]
		g1 := gs[1][:len(dd)]
		g2 := gs[2][:len(dd)]
		g3 := gs[3][:len(dd)]
		for j := range dd {
			g := (((g0[j] + g1[j]) + g2[j]) + g3[j]) + wd*sd[j]
			vj := mu*v[j] + g
			v[j] = vj
			dd[j] = sd[j] - lr*vj
		}
	default:
		var buf fusedStrip
		for start := 0; start < len(dd); start += len(buf) {
			end := start + len(buf)
			if end > len(dd) {
				end = len(dd)
			}
			sum := stripSum(&buf, gs, start, end)
			db := dd[start:end:end]
			sb := sd[start:end:end]
			vb := v[start:end:end]
			for j, gj := range sum {
				g := gj + wd*sb[j]
				vj := mu*vb[j] + g
				vb[j] = vj
				db[j] = sb[j] - lr*vj
			}
		}
	}
}

// fusedStrip is the stack-resident strip buffer used to sum wide batches a
// cache-line-friendly chunk at a time; element order within the strip sum
// still matches a sequential copy+Add pass exactly.
type fusedStrip [512]float32

// stripSum returns buf[:end-start] holding the in-order element-wise sum of
// gs over [start, end).
func stripSum(buf *fusedStrip, gs [][]float32, start, end int) []float32 {
	w := end - start
	sum := buf[:w:w]
	copy(sum, gs[0][start:end])
	for _, gb := range gs[1:] {
		g := gb[start:end:end]
		for j, vj := range g {
			sum[j] += vj
		}
	}
	return sum
}

// fusedSGDPlain is the momentum-free variant: dst = src - lr·(Σgs + wd·src).
func fusedSGDPlain(dd, sd []float32, gs [][]float32, lr, wd float32) {
	sd = sd[:len(dd)]
	switch len(gs) {
	case 1:
		g0 := gs[0][:len(dd)]
		for j := range dd {
			g := g0[j] + wd*sd[j]
			dd[j] = sd[j] - lr*g
		}
	case 2:
		g0 := gs[0][:len(dd)]
		g1 := gs[1][:len(dd)]
		for j := range dd {
			g := (g0[j] + g1[j]) + wd*sd[j]
			dd[j] = sd[j] - lr*g
		}
	case 3:
		g0 := gs[0][:len(dd)]
		g1 := gs[1][:len(dd)]
		g2 := gs[2][:len(dd)]
		for j := range dd {
			g := ((g0[j] + g1[j]) + g2[j]) + wd*sd[j]
			dd[j] = sd[j] - lr*g
		}
	case 4:
		g0 := gs[0][:len(dd)]
		g1 := gs[1][:len(dd)]
		g2 := gs[2][:len(dd)]
		g3 := gs[3][:len(dd)]
		for j := range dd {
			g := (((g0[j] + g1[j]) + g2[j]) + g3[j]) + wd*sd[j]
			dd[j] = sd[j] - lr*g
		}
	default:
		var buf fusedStrip
		for start := 0; start < len(dd); start += len(buf) {
			end := start + len(buf)
			if end > len(dd) {
				end = len(dd)
			}
			sum := stripSum(&buf, gs, start, end)
			db := dd[start:end:end]
			sb := sd[start:end:end]
			for j, gj := range sum {
				g := gj + wd*sb[j]
				db[j] = sb[j] - lr*g
			}
		}
	}
}

// Clone implements Optimizer: the clone shares hyperparameters but starts
// with zero velocity.
func (s *SGD) Clone() Optimizer {
	return &SGD{lr: s.lr, momentum: s.momentum, decay: s.decay}
}

// State implements Optimizer: a deep copy of the momentum velocity, nil when
// momentum is off or no step has run yet.
func (s *SGD) State() [][]float32 {
	if s.velocity == nil {
		return nil
	}
	out := make([][]float32, len(s.velocity))
	for i, v := range s.velocity {
		out[i] = append([]float32(nil), v...)
	}
	return out
}

// LoadState implements Optimizer.
func (s *SGD) LoadState(state [][]float32) {
	if state == nil {
		s.velocity = nil
		return
	}
	s.velocity = make([][]float32, len(state))
	for i, v := range state {
		s.velocity[i] = append([]float32(nil), v...)
	}
}

// SetLearningRate implements Optimizer.
func (s *SGD) SetLearningRate(lr float64) { s.lr = lr }

// LearningRate implements Optimizer.
func (s *SGD) LearningRate() float64 { return s.lr }

// Name implements Optimizer.
func (s *SGD) Name() string {
	if s.momentum > 0 {
		return fmt.Sprintf("SGD(lr=%g,momentum=%g,wd=%g)", s.lr, s.momentum, s.decay)
	}
	return fmt.Sprintf("SGD(lr=%g)", s.lr)
}

// StepSchedule is a piecewise-constant learning-rate schedule: the base rate
// is multiplied by factor at each listed epoch, as in the paper's ResNet
// training (decay 0.1 at epochs 200 and 250).
type StepSchedule struct {
	base   float64
	factor float64
	epochs []int
}

// NewStepSchedule returns a schedule decaying base by factor at each of the
// given epochs.
func NewStepSchedule(base, factor float64, epochs ...int) *StepSchedule {
	e := make([]int, len(epochs))
	copy(e, epochs)
	return &StepSchedule{base: base, factor: factor, epochs: e}
}

// At returns the learning rate in force at the given zero-based epoch.
func (s *StepSchedule) At(epoch int) float64 {
	lr := s.base
	for _, e := range s.epochs {
		if epoch >= e {
			lr *= s.factor
		}
	}
	return lr
}

// Apply sets the optimizer's learning rate for the given epoch and returns
// the rate applied.
func (s *StepSchedule) Apply(opt Optimizer, epoch int) float64 {
	lr := s.At(epoch)
	opt.SetLearningRate(lr)
	return lr
}
