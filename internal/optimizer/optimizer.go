// Package optimizer implements the stochastic-gradient-descent update rules
// used by the paper's experiments: plain SGD and SGD with momentum, both with
// optional weight decay, plus the step learning-rate schedule (decay ×0.1 at
// fixed epochs) used for the ResNet runs.
package optimizer

import (
	"fmt"

	"dssp/internal/tensor"
)

// Optimizer applies parameter updates computed from gradients. In the
// parameter-server architecture the optimizer lives on the server and is
// applied to the globally shared weights whenever a worker pushes gradients.
type Optimizer interface {
	// Step applies one update to params given the aligned grads.
	Step(params, grads []*tensor.Tensor)
	// SetLearningRate changes the learning rate used by subsequent steps.
	SetLearningRate(lr float64)
	// LearningRate returns the current learning rate.
	LearningRate() float64
	// Name returns a short description of the optimizer.
	Name() string
	// Clone returns a fresh optimizer with the same hyperparameters and no
	// accumulated state. The sharded parameter store gives each shard its own
	// clone so that per-parameter state (e.g. momentum velocity) stays aligned
	// with the shard's parameter slice.
	Clone() Optimizer
	// State returns a deep copy of the optimizer's accumulated per-parameter
	// state (momentum velocity for SGD), aligned with the parameter list it
	// has been stepping, or nil when it holds none. Checkpoints persist it so
	// a restored server resumes with the same update dynamics.
	State() [][]float32
	// LoadState replaces the accumulated state with a deep copy of state
	// (nil clears it). The next Step must see parameter tensors whose sizes
	// match the loaded state.
	LoadState(state [][]float32)
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay: v = mu*v + grad + wd*param; param -= lr * v.
type SGD struct {
	lr       float64
	momentum float64
	decay    float64
	velocity [][]float32
}

// NewSGD returns a plain SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// NewSGDMomentum returns an SGD optimizer with momentum and weight decay.
func NewSGDMomentum(lr, momentum, weightDecay float64) *SGD {
	return &SGD{lr: lr, momentum: momentum, decay: weightDecay}
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optimizer: %d params but %d grads", len(params), len(grads)))
	}
	if s.momentum > 0 && s.velocity == nil {
		s.velocity = make([][]float32, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float32, p.Size())
		}
	}
	lr := float32(s.lr)
	mu := float32(s.momentum)
	wd := float32(s.decay)
	for i, p := range params {
		pd := p.Data()
		gd := grads[i].Data()
		if len(pd) != len(gd) {
			panic(fmt.Sprintf("optimizer: param %d has %d values but grad has %d", i, len(pd), len(gd)))
		}
		if s.momentum > 0 {
			v := s.velocity[i]
			for j := range pd {
				g := gd[j] + wd*pd[j]
				v[j] = mu*v[j] + g
				pd[j] -= lr * v[j]
			}
		} else {
			for j := range pd {
				g := gd[j] + wd*pd[j]
				pd[j] -= lr * g
			}
		}
	}
}

// Clone implements Optimizer: the clone shares hyperparameters but starts
// with zero velocity.
func (s *SGD) Clone() Optimizer {
	return &SGD{lr: s.lr, momentum: s.momentum, decay: s.decay}
}

// State implements Optimizer: a deep copy of the momentum velocity, nil when
// momentum is off or no step has run yet.
func (s *SGD) State() [][]float32 {
	if s.velocity == nil {
		return nil
	}
	out := make([][]float32, len(s.velocity))
	for i, v := range s.velocity {
		out[i] = append([]float32(nil), v...)
	}
	return out
}

// LoadState implements Optimizer.
func (s *SGD) LoadState(state [][]float32) {
	if state == nil {
		s.velocity = nil
		return
	}
	s.velocity = make([][]float32, len(state))
	for i, v := range state {
		s.velocity[i] = append([]float32(nil), v...)
	}
}

// SetLearningRate implements Optimizer.
func (s *SGD) SetLearningRate(lr float64) { s.lr = lr }

// LearningRate implements Optimizer.
func (s *SGD) LearningRate() float64 { return s.lr }

// Name implements Optimizer.
func (s *SGD) Name() string {
	if s.momentum > 0 {
		return fmt.Sprintf("SGD(lr=%g,momentum=%g,wd=%g)", s.lr, s.momentum, s.decay)
	}
	return fmt.Sprintf("SGD(lr=%g)", s.lr)
}

// StepSchedule is a piecewise-constant learning-rate schedule: the base rate
// is multiplied by factor at each listed epoch, as in the paper's ResNet
// training (decay 0.1 at epochs 200 and 250).
type StepSchedule struct {
	base   float64
	factor float64
	epochs []int
}

// NewStepSchedule returns a schedule decaying base by factor at each of the
// given epochs.
func NewStepSchedule(base, factor float64, epochs ...int) *StepSchedule {
	e := make([]int, len(epochs))
	copy(e, epochs)
	return &StepSchedule{base: base, factor: factor, epochs: e}
}

// At returns the learning rate in force at the given zero-based epoch.
func (s *StepSchedule) At(epoch int) float64 {
	lr := s.base
	for _, e := range s.epochs {
		if epoch >= e {
			lr *= s.factor
		}
	}
	return lr
}

// Apply sets the optimizer's learning rate for the given epoch and returns
// the rate applied.
func (s *StepSchedule) Apply(opt Optimizer, epoch int) float64 {
	lr := s.At(epoch)
	opt.SetLearningRate(lr)
	return lr
}
