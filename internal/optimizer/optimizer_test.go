package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"dssp/internal/tensor"
)

func TestSGDStepMovesAgainstGradient(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2, 3}, 3)
	g := tensor.FromSlice([]float32{1, -1, 0.5}, 3)
	opt := NewSGD(0.1)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	want := []float32{0.9, 2.1, 2.95}
	for i, v := range p.Data() {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Errorf("param[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestSGDMomentumAcceleratesRepeatedGradients(t *testing.T) {
	pPlain := tensor.FromSlice([]float32{0}, 1)
	pMom := tensor.FromSlice([]float32{0}, 1)
	g := tensor.FromSlice([]float32{1}, 1)
	plain := NewSGD(0.1)
	mom := NewSGDMomentum(0.1, 0.9, 0)
	for i := 0; i < 10; i++ {
		plain.Step([]*tensor.Tensor{pPlain}, []*tensor.Tensor{g})
		mom.Step([]*tensor.Tensor{pMom}, []*tensor.Tensor{g})
	}
	if !(pMom.At(0) < pPlain.At(0)) {
		t.Fatalf("momentum should move further: momentum %v, plain %v", pMom.At(0), pPlain.At(0))
	}
}

func TestSGDWeightDecayShrinksParameters(t *testing.T) {
	p := tensor.FromSlice([]float32{10}, 1)
	g := tensor.FromSlice([]float32{0}, 1)
	opt := NewSGDMomentum(0.1, 0, 0.5)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if got := p.At(0); math.Abs(float64(got)-9.5) > 1e-6 {
		t.Fatalf("weight decay produced %v, want 9.5", got)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² with exact gradients.
	rng := rand.New(rand.NewSource(1))
	target := tensor.New(10).RandNormal(rng, 0, 1)
	w := tensor.New(10).RandNormal(rng, 0, 1)
	g := tensor.New(10)
	opt := NewSGDMomentum(0.1, 0.9, 0)
	for i := 0; i < 200; i++ {
		copy(g.Data(), w.Data())
		g.Sub(target).Scale(2)
		opt.Step([]*tensor.Tensor{w}, []*tensor.Tensor{g})
	}
	diff := w.Clone().Sub(target)
	if diff.L2Norm() > 1e-3 {
		t.Fatalf("SGD did not converge: distance %v", diff.L2Norm())
	}
}

func TestSGDPanicsOnMismatchedInputs(t *testing.T) {
	opt := NewSGD(0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched param/grad counts")
		}
	}()
	opt.Step([]*tensor.Tensor{tensor.New(2)}, nil)
}

func TestLearningRateAccessors(t *testing.T) {
	opt := NewSGD(0.05)
	if opt.LearningRate() != 0.05 {
		t.Fatalf("LearningRate = %v", opt.LearningRate())
	}
	opt.SetLearningRate(0.001)
	if opt.LearningRate() != 0.001 {
		t.Fatalf("after SetLearningRate, got %v", opt.LearningRate())
	}
	if NewSGD(0.1).Name() == "" || NewSGDMomentum(0.1, 0.9, 1e-4).Name() == "" {
		t.Fatal("optimizer names must not be empty")
	}
}

func TestStepScheduleMatchesPaperResNetSetting(t *testing.T) {
	// Paper: lr 0.05 decayed by 0.1 at epochs 200 and 250 over 300 epochs.
	sched := NewStepSchedule(0.05, 0.1, 200, 250)
	cases := []struct {
		epoch int
		want  float64
	}{
		{0, 0.05},
		{199, 0.05},
		{200, 0.005},
		{249, 0.005},
		{250, 0.0005},
		{299, 0.0005},
	}
	for _, tc := range cases {
		if got := sched.At(tc.epoch); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%d) = %v, want %v", tc.epoch, got, tc.want)
		}
	}
	opt := NewSGD(0.05)
	if got := sched.Apply(opt, 260); math.Abs(got-0.0005) > 1e-12 || opt.LearningRate() != got {
		t.Errorf("Apply(260) = %v, optimizer lr %v", got, opt.LearningRate())
	}
}
