// Command dsspbench regenerates the paper's evaluation (Figures 2-4, Table I,
// and the §V-C throughput-trend analysis) on the built-in cluster simulator
// and prints the resulting series and tables as text.
//
// Examples:
//
//	dsspbench -exp fig3a                 # one figure at the paper's 300 epochs
//	dsspbench -exp all -epochs 60        # everything, faster
//	dsspbench -exp table1                # Table I only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dssp"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: fig2, fig3a..fig3f, fig4, table1, trends, all")
		epochs = flag.Int("epochs", 300, "number of simulated training epochs")
		seed   = flag.Int64("seed", 1, "simulation seed")
		points = flag.Int("points", 25, "samples per printed curve")
	)
	flag.Parse()

	cfg := dssp.SimulationConfig{Epochs: *epochs, Seed: *seed, Points: *points}
	if err := run(os.Stdout, *exp, cfg); err != nil {
		log.Fatalf("dsspbench: %v", err)
	}
}

// run executes the selected experiment(s) and writes a textual report.
func run(w *os.File, exp string, cfg dssp.SimulationConfig) error {
	switch exp {
	case "all":
		for _, id := range append([]string{"fig2"}, dssp.FigureIDs()...) {
			if err := run(w, id, cfg); err != nil {
				return err
			}
		}
		if err := run(w, "table1", cfg); err != nil {
			return err
		}
		return run(w, "trends", cfg)
	case "fig2":
		return printFigure2(w)
	case "table1":
		return printTableI(w, cfg)
	case "trends":
		return printTrends(w, cfg)
	default:
		return printFigure(w, exp, cfg)
	}
}

func printFigure(w *os.File, id string, cfg dssp.SimulationConfig) error {
	fig, err := dssp.Figure(id, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== %s: %s (%d epochs) ===\n", fig.ID, fig.Title, cfg.Epochs)
	for _, c := range fig.Curves {
		fmt.Fprintf(w, "%-24s final accuracy %.4f", c.Label, c.FinalAccuracy)
		if c.Finish > 0 {
			fmt.Fprintf(w, ", completed in %s", c.Finish.Round(time.Second))
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "  t(s):   ")
		for _, ti := range c.Times {
			fmt.Fprintf(w, "%8.0f", ti.Seconds())
		}
		fmt.Fprint(w, "\n  acc:    ")
		for _, a := range c.Accuracies {
			fmt.Fprintf(w, "%8.3f", a)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func printFigure2(w *os.File) error {
	// The scenario of Figure 2: the fast worker iterates in 1s, the slow one
	// in 3.5s; the controller may allow up to 8 extra iterations.
	waits, selected, err := dssp.PredictionCurve(time.Second, 3500*time.Millisecond, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== fig2: predicted fast-worker waiting time per candidate r ===\n")
	fmt.Fprintf(w, "%-4s %-12s\n", "r", "wait")
	for r, wait := range waits {
		marker := ""
		if r == selected {
			marker = "  <- r* chosen by the synchronization controller"
		}
		fmt.Fprintf(w, "%-4d %-12s%s\n", r, wait.Round(10*time.Millisecond), marker)
	}
	return nil
}

func printTableI(w *os.File, cfg dssp.SimulationConfig) error {
	rows, err := dssp.TableI(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Table I: time to reach target accuracy, ResNet-110 on the mixed GPU cluster (%d epochs) ===\n", cfg.Epochs)
	fmt.Fprintf(w, "%-18s %-18s %-18s\n", "Paradigm", "to 0.67 accuracy", "to 0.68 accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-18s %-18s\n", r.Paradigm, formatTarget(r.To067, r.Reached067), formatTarget(r.To068, r.Reached068))
	}
	return nil
}

func formatTarget(d time.Duration, reached bool) string {
	if !reached {
		return "-"
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

func printTrends(w *os.File, cfg dssp.SimulationConfig) error {
	trends, err := dssp.ThroughputTrends(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== §V-C: completion-time ordering per model (%d epochs) ===\n", cfg.Epochs)
	for _, tr := range trends {
		kind := "conv-only"
		if tr.HasFullyConnected {
			kind = "with fully connected layers"
		}
		fmt.Fprintf(w, "%s (%s):\n", tr.Model, kind)
		for _, label := range tr.Order {
			fmt.Fprintf(w, "  %-16s %s\n", label, tr.FinishTimes[label].Round(time.Second))
		}
	}
	return nil
}
