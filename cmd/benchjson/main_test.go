package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline stores a baseline document with the given ns/op values.
func writeBaseline(t *testing.T, ns map[string]float64) string {
	t.Helper()
	doc := Document{Results: make([]Result, 0, len(ns))}
	for name, v := range ns {
		doc.Results = append(doc.Results, Result{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": v}})
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func resultDoc(ns map[string]float64) *Document {
	doc := &Document{}
	for name, v := range ns {
		doc.Results = append(doc.Results, Result{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": v}})
	}
	return doc
}

// TestThresholdGateFailsPinnedRegressions pins the -threshold contract: a
// pinned benchmark past the allowed ratio is reported, an unpinned one —
// however much slower — is not, and neither is a pinned one inside the
// budget.
func TestThresholdGateFailsPinnedRegressions(t *testing.T) {
	base := writeBaseline(t, map[string]float64{
		"BenchmarkPinned/fast-1":   100,
		"BenchmarkPinned/slow-1":   100,
		"BenchmarkUnpinned/slow-1": 100,
	})
	doc := resultDoc(map[string]float64{
		"BenchmarkPinned/fast-1":   110, // +10%: inside a 25% budget
		"BenchmarkPinned/slow-1":   200, // +100%: regression
		"BenchmarkUnpinned/slow-1": 900, // huge, but informational
	})
	regressions := compareBaseline(doc, base, 0.25, []string{"BenchmarkPinned"})
	if len(regressions) != 1 {
		t.Fatalf("got %d regressions (%v), want exactly 1", len(regressions), regressions)
	}
	if !strings.Contains(regressions[0], "BenchmarkPinned/slow-1") {
		t.Fatalf("regression names the wrong benchmark: %s", regressions[0])
	}
}

// TestThresholdGateFailsOnUnmatchedPin pins the drift guard: a pin that
// matches nothing in the run/baseline intersection is a failure, not a
// silent pass.
func TestThresholdGateFailsOnUnmatchedPin(t *testing.T) {
	base := writeBaseline(t, map[string]float64{"BenchmarkReal-1": 100})
	doc := resultDoc(map[string]float64{"BenchmarkReal-1": 100})
	regressions := compareBaseline(doc, base, 0.25, []string{"BenchmarkReal", "BenchmarkRenamedAway"})
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkRenamedAway") {
		t.Fatalf("unmatched pin not reported: %v", regressions)
	}
}

// TestThresholdGateOffStaysInformational pins that without a threshold (or
// without pins) nothing ever fails, however bad the numbers look.
func TestThresholdGateOffStaysInformational(t *testing.T) {
	base := writeBaseline(t, map[string]float64{"BenchmarkX-1": 100})
	doc := resultDoc(map[string]float64{"BenchmarkX-1": 10000})
	if got := compareBaseline(doc, base, 0, []string{"BenchmarkX"}); len(got) != 0 {
		t.Fatalf("threshold 0 still produced regressions: %v", got)
	}
	if got := compareBaseline(doc, base, 0.25, nil); len(got) != 0 {
		t.Fatalf("empty pin list still produced regressions: %v", got)
	}
}

// TestParsePins covers allowlist parsing.
func TestParsePins(t *testing.T) {
	got := parsePins(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("parsePins = %v", got)
	}
	if parsePins("") != nil {
		t.Fatal("empty pin string should parse to nil")
	}
}

// TestParseBenchLineStillParses guards the parser the gate sits on.
func TestParseBenchLineStillParses(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkFoo/bar-8   	 123	 4567 ns/op	 89 B/op")
	if !ok || res.Name != "BenchmarkFoo/bar-8" || res.Iterations != 123 {
		t.Fatalf("parseBenchLine = %+v, %v", res, ok)
	}
	if res.Metrics["ns/op"] != 4567 || res.Metrics["B/op"] != 89 {
		t.Fatalf("metrics = %v", res.Metrics)
	}
}
