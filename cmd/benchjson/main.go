// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark trajectories can accumulate as CI artifacts
// (BENCH_*.json) and be diffed across commits.
//
//	go test -run '^$' -bench=. ./... | go run ./cmd/benchjson -out BENCH_smoke.json
//
// Non-benchmark lines (package headers, PASS/ok trailers) are ignored, so
// the raw `go test` stream can be piped in unfiltered.
//
// With -baseline the document is compared against a previous one. By
// default the comparison is informational; adding -threshold and -pin turns
// it into a regression gate for an allowlisted set of benchmarks:
//
//	benchjson -in bench.txt -out BENCH.json -baseline BENCH_baseline.json \
//	    -threshold 0.25 -pin BenchmarkStoreConcurrentPushPull/sharded,BenchmarkWireEncode
//
// exits non-zero when any pinned benchmark's ns/op regressed by more than
// 25% against the baseline; every other benchmark stays informational.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement: the benchmark's full name (including
// sub-benchmark path and the -cpu suffix go test appends), its iteration
// count, and every reported metric keyed by unit (ns/op, B/op, allocs/op,
// plus custom b.ReportMetric units such as wire-B/op).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the file layout: context lines go test printed (goos, goarch,
// pkg, cpu) followed by the measurements.
type Document struct {
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	in := flag.String("in", "", "bench output file to read (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to compare ns/op against (informational unless -threshold gates it)")
	threshold := flag.Float64("threshold", 0, "fail (exit 1) when a pinned benchmark's ns/op regresses by more than this fraction vs -baseline (e.g. 0.25 = 25%); 0 keeps the comparison informational")
	pinned := flag.String("pin", "", "comma-separated benchmark name prefixes the -threshold gate applies to; all other benchmarks stay informational")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("benchjson: no benchmark lines found in input")
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		fmt.Printf("benchjson: wrote %d results to %s\n", len(doc.Results), *out)
	}
	if *baseline != "" {
		regressions := compareBaseline(doc, *baseline, *threshold, parsePins(*pinned))
		if len(regressions) > 0 {
			for _, line := range regressions {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", line)
			}
			os.Exit(1)
		}
	}
}

// parsePins splits the -pin allowlist into cleaned, non-empty prefixes.
func parsePins(s string) []string {
	var pins []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pins = append(pins, p)
		}
	}
	return pins
}

// pinnedName reports whether a benchmark name falls under the -pin
// allowlist. Prefix matching lets one pin cover a sub-benchmark family
// (`BenchmarkStoreConcurrentPushPull/sharded` pins every worker count).
func pinnedName(name string, pins []string) bool {
	for _, p := range pins {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compareBaseline prints an ns/op comparison of doc against a previously
// written baseline document and returns the threshold violations. Without a
// threshold (or pins) it never reports any: smoke runs on shared CI hardware
// are noisy, and the perf trajectory is a record, not a merge gate. With
// -threshold and -pin set, the small allowlisted set of macro benchmarks is
// gated — a pinned benchmark whose ns/op regressed by more than the
// threshold fraction is returned for the caller to fail on, while everything
// off the allowlist stays informational. Missing files or unknown benchmarks
// just shrink the table.
func compareBaseline(doc *Document, path string, threshold float64, pins []string) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("benchjson: no baseline comparison (%v)\n", err)
		return nil
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Printf("benchjson: no baseline comparison (%v)\n", err)
		return nil
	}
	baseNs := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
			baseNs[r.Name] = ns
		}
	}
	gated := threshold > 0 && len(pins) > 0
	mode := "informational"
	if gated {
		mode = fmt.Sprintf("threshold %.0f%% on %d pins", threshold*100, len(pins))
	}
	fmt.Printf("benchjson: comparison against baseline %s (%s)\n", path, mode)
	compared := 0
	pinMatched := make(map[string]bool, len(pins))
	var regressions []string
	for _, r := range doc.Results {
		ns, ok := r.Metrics["ns/op"]
		old, okBase := baseNs[r.Name]
		if !ok || !okBase || ns <= 0 {
			continue
		}
		compared++
		ratio := ns / old
		pinnedHere := gated && pinnedName(r.Name, pins)
		if gated {
			for _, p := range pins {
				if strings.HasPrefix(r.Name, p) {
					pinMatched[p] = true
				}
			}
		}
		marker := ""
		switch {
		case pinnedHere && ratio > 1+threshold:
			marker = "  <-- REGRESSION (pinned)"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx allowed)",
				r.Name, ns, old, ratio, 1+threshold))
		case ratio >= 1.5:
			marker = "  <-- slower"
		case ratio <= 0.67:
			marker = "  <-- faster"
		}
		if pinnedHere && marker == "" {
			marker = "  (pinned)"
		}
		fmt.Printf("  %-70s %12.0f ns/op  baseline %12.0f  ratio %.2fx%s\n", r.Name, ns, old, ratio, marker)
	}
	// A pin that gated nothing is itself a failure: a renamed or dropped
	// benchmark (or a -bench pattern drifting out of sync with the
	// allowlist) must not silently un-gate the exact measurement the gate
	// exists to protect.
	if gated {
		for _, p := range pins {
			if !pinMatched[p] {
				regressions = append(regressions, fmt.Sprintf(
					"pin %q matched no benchmark present in both the run and the baseline", p))
			}
		}
	}
	fmt.Printf("benchjson: compared %d of %d benchmarks against %d baseline entries\n",
		compared, len(doc.Results), len(baseNs))
	return regressions
}

// parse scans go test output for benchmark result lines and context headers.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Context: map[string]string{}, Results: nil}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				// Later packages overwrite pkg; keep the first for a stable
				// document and note multiplicity instead.
				if _, seen := doc.Context[key]; !seen {
					doc.Context[key] = strings.TrimSpace(v)
				}
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if ok {
			doc.Results = append(doc.Results, res)
		}
	}
	return doc, scanner.Err()
}

// parseBenchLine parses one "BenchmarkX-8  20  123 ns/op  456 B/op" line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Need at least name, iterations and one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = value
	}
	return res, true
}
