// Command psworker runs one training worker that connects to a psserver
// instance over TCP and executes the worker side of the paper's Algorithm 1:
// pull weights, compute gradients on its data shard, push, wait for OK.
//
// Example (two workers, one slower to emulate a weaker GPU):
//
//	psworker -server 127.0.0.1:7070 -id 0 -workers 2
//	psworker -server 127.0.0.1:7070 -id 1 -workers 2 -delay 20ms
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dssp"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:7070", "parameter server address")
		id        = flag.Int("id", 0, "worker id in [0, workers)")
		workers   = flag.Int("workers", 2, "total number of workers")
		model     = flag.String("model", string(dssp.ModelSmallMLP), "model: small-mlp, small-cnn, alexnet-small, resnet-8")
		classes   = flag.Int("classes", 4, "number of classes in the synthetic dataset")
		examples  = flag.Int("examples", 512, "number of synthetic training examples")
		imageSize = flag.Int("image-size", 16, "image size (or feature count for small-mlp)")
		batch     = flag.Int("batch", 16, "mini-batch size")
		epochs    = flag.Int("epochs", 5, "number of epochs over this worker's shard")
		delay     = flag.Duration("delay", 0, "artificial per-iteration delay (emulates a slower GPU)")
		seed      = flag.Int64("seed", 1, "seed (must match the server)")
	)
	flag.Parse()

	report, err := dssp.RunWorker(dssp.WorkerConfig{
		ServerAddr: *server,
		WorkerID:   *id,
		Workers:    *workers,
		Model:      dssp.Model(*model),
		Dataset: dssp.DatasetConfig{
			Examples: *examples, Classes: *classes, ImageSize: *imageSize, Noise: 0.5, Seed: *seed,
		},
		BatchSize: *batch,
		Epochs:    *epochs,
		Seed:      *seed,
		Delay:     *delay,
	})
	if err != nil {
		log.Fatalf("psworker %d: %v", *id, err)
	}
	fmt.Printf("worker %d finished: %d iterations in %v (final mini-batch loss %.4f, %.1f iters/s)\n",
		*id, report.Iterations, report.Duration.Round(time.Millisecond), report.FinalLoss,
		float64(report.Iterations)/report.Duration.Seconds())
}
