// Command psworker runs one training worker that connects to a psserver
// instance over TCP and executes the worker side of the paper's Algorithm 1:
// pull weights, compute gradients on its data shard, push, wait for OK.
//
// Example (two workers, one slower to emulate a weaker GPU):
//
//	psworker -server 127.0.0.1:7070 -id 0 -workers 2
//	psworker -server 127.0.0.1:7070 -id 1 -workers 2 -delay 20ms
//
// Its flags mirror cmd/psserver's where the two sides must agree: -model,
// -classes, -examples, -image-size and -seed describe the shared model and
// dataset; -wire selects the TCP encoding (binary frames by default, gob as
// the legacy escape hatch — it must match the server, and a mismatch fails
// fast on the first frame); -compress/-topk/-compress-pull select the
// gradient codec (the default "auto" adopts whatever the server speaks,
// anything else must match the server or registration is rejected); -shards,
// when set, asserts the server's parameter-store shard count and aborts on a
// mismatch.
//
// Delta pulls: -delta-pull (default on) requests version-gated delta pulls —
// the worker echoes the per-shard versions it already holds and the server
// re-sends only shards that changed (docs/PROTOCOL.md §5a). A server that
// refuses (or predates the feature, over gob) downgrades the worker to full
// pulls; against a pre-v2 binary server run with -delta-pull=false so the
// worker speaks pure v1 frames.
//
// Fault tolerance: -reconnect redials and rejoins on any connection loss
// (surviving parameter-server restarts), -heartbeat proves liveness to an
// -elastic server, and -fail-after injects a crash for demos.
//
// Server groups: -cluster makes -server the coordinator's address — the
// worker fetches the cluster map at registration and routes gradient
// fragments directly to each shard owner while the coordinator keeps making
// the staleness decisions. A lost data link recovers by refetching the map
// (which is how a backup promotion reaches the worker); a lost coordinator
// fails the run fast.
//
// Aggregation tier: -tree makes -server the root's address — the worker
// fetches the tree layout and registers through the relay covering its id
// (psserver -role relay), falling back to the root when none does. With
// -reconnect, a worker orphaned by a dead relay re-fetches the layout and
// re-parents instead of failing.
//
// Observability: -metrics-addr starts an admin HTTP listener serving the
// worker-side Prometheus /metrics (pull wait, push round-trip, iteration and
// transport counters), /healthz and net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dssp"
)

func main() {
	var (
		server       = flag.String("server", "127.0.0.1:7070", "parameter server address (the coordinator with -cluster)")
		cluster      = flag.Bool("cluster", false, "join a server group: fetch the cluster map from the coordinator at -server and route gradient fragments to each shard owner")
		tree         = flag.Bool("tree", false, "join through the aggregation tier: fetch the tree layout from the root at -server and push via the relay covering this worker (re-fetched on every reconnect)")
		wire         = flag.String("wire", dssp.WireBinary, "TCP wire format: binary or gob (must match the server)")
		id           = flag.Int("id", 0, "worker id in [0, workers)")
		workers      = flag.Int("workers", 2, "total number of workers")
		model        = flag.String("model", string(dssp.ModelSmallMLP), "model: small-mlp, small-cnn, alexnet-small, resnet-8 (must match the server)")
		classes      = flag.Int("classes", 4, "number of classes in the synthetic dataset (must match the server)")
		examples     = flag.Int("examples", 512, "number of synthetic training examples (must match the server)")
		imageSize    = flag.Int("image-size", 16, "image size (or feature count for small-mlp; must match the server)")
		batch        = flag.Int("batch", 16, "mini-batch size")
		epochs       = flag.Int("epochs", 5, "number of epochs over this worker's shard")
		delay        = flag.Duration("delay", 0, "artificial per-iteration delay (emulates a slower GPU)")
		shards       = flag.Int("shards", 0, "expected parameter-store shard count on the server (0 = accept any; a mismatch aborts)")
		compressName = flag.String("compress", dssp.CompressAuto, "gradient codec: auto (adopt the server's), none, fp16, int8, topk")
		topk         = flag.Float64("topk", 0, "fraction of gradient entries the topk codec keeps (0 = default 0.1; must match the server)")
		compressPull = flag.Bool("compress-pull", false, "expect compressed weight pulls (must match the server; implied by -compress auto)")
		deltaPull    = flag.Bool("delta-pull", true, "request version-gated delta pulls (the server re-sends only changed shards; falls back to full pulls if refused)")
		adversary    = flag.Float64("adversary", 0, "Byzantine gradient-scale factor for robustness experiments (0 or 1 = honest; e.g. -10 pushes scaled ascent)")
		reconnect    = flag.Bool("reconnect", false, "redial and rejoin on connection loss (survives server restarts)")
		reconnectTO  = flag.Duration("reconnect-timeout", 30*time.Second, "give up after failing to reconnect for this long")
		heartbeat    = flag.Duration("heartbeat", 0, "send liveness heartbeats at this interval (needed under an -elastic server; 0 = off)")
		failAfter    = flag.Int("fail-after", 0, "fault injection for demos: crash (drop the connection) before this iteration (0 = never)")
		metricsAddr  = flag.String("metrics-addr", "", "admin HTTP listen address serving worker-side /metrics, /healthz and pprof (empty = off)")
		seed         = flag.Int64("seed", 1, "seed (must match the server)")
	)
	flag.Parse()

	compression := dssp.Compression{Codec: *compressName, TopK: *topk, Pull: *compressPull}
	report, err := dssp.RunWorker(dssp.WorkerConfig{
		ServerAddr: *server,
		Cluster:    *cluster,
		Tree:       *tree,
		Wire:       *wire,
		WorkerID:   *id,
		Workers:    *workers,
		Model:      dssp.Model(*model),
		Dataset: dssp.DatasetConfig{
			Examples: *examples, Classes: *classes, ImageSize: *imageSize, Noise: 0.5, Seed: *seed,
		},
		BatchSize: *batch,
		Epochs:    *epochs,
		Seed:      *seed,
		Delay:     *delay,
		Options: dssp.Options{
			Shards:            *shards,
			Compression:       compression,
			DeltaPull:         *deltaPull,
			HeartbeatInterval: *heartbeat,
		},
		Adversary:        *adversary,
		MetricsAddr:      *metricsAddr,
		Reconnect:        *reconnect,
		ReconnectTimeout: *reconnectTO,
		FailAfter:        *failAfter,
	})
	if err != nil {
		log.Fatalf("psworker %d: %v", *id, err)
	}
	if report.Crashed {
		fmt.Printf("worker %d crashed (injected) after %d iterations\n", *id, report.Iterations)
		return
	}
	fmt.Printf("worker %d finished: %d iterations in %v (final mini-batch loss %.4f, %.1f iters/s, codec %s, pushed %.1f KiB, pulled %.1f KiB, %d reconnects)\n",
		*id, report.Iterations, report.Duration.Round(time.Millisecond), report.FinalLoss,
		float64(report.Iterations)/report.Duration.Seconds(), report.Codec,
		float64(report.PushedBytes)/1024, float64(report.PulledBytes)/1024, report.Reconnects)
}
