// Command psserver runs a stand-alone DSSP parameter server over TCP.
//
// Example:
//
//	psserver -addr :7070 -workers 2 -paradigm DSSP -staleness 3 -range 12
//
// Workers started with cmd/psworker (using matching -model, -classes, -seed
// flags) connect to it and train a shared model under the selected
// synchronization paradigm.
//
// Gradient compression: -compress selects the wire codec (none, fp16, int8,
// topk), -topk its keep fraction, and -compress-pull additionally compresses
// the weights workers pull. Workers launched with their default -compress
// auto adopt whatever the server speaks; an explicitly mismatched worker is
// rejected at registration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dssp"
)

func main() {
	var (
		addr         = flag.String("addr", ":7070", "TCP listen address")
		workers      = flag.Int("workers", 2, "number of workers expected to join")
		paradigm     = flag.String("paradigm", "DSSP", "synchronization paradigm: BSP, ASP, SSP, DSSP, BoundedDelay, BackupBSP")
		staleness    = flag.Int("staleness", 3, "staleness threshold (SSP) or lower bound sL (DSSP)")
		rng          = flag.Int("range", 12, "DSSP threshold range r = sU - sL")
		enforce      = flag.Bool("enforce-bound", false, "use DSSP's strict Theorem-2 mode")
		backups      = flag.Int("backups", 1, "spare workers for BackupBSP")
		model        = flag.String("model", string(dssp.ModelSmallMLP), "model: small-mlp, small-cnn, alexnet-small, resnet-8")
		classes      = flag.Int("classes", 4, "number of classes in the synthetic dataset")
		examples     = flag.Int("examples", 512, "number of synthetic training examples")
		imageSize    = flag.Int("image-size", 16, "image size (or feature count for small-mlp)")
		lr           = flag.Float64("lr", 0.1, "learning rate")
		momentum     = flag.Float64("momentum", 0.0, "SGD momentum")
		shards       = flag.Int("shards", 0, "parameter-store shards (0 = one per CPU)")
		compressName = flag.String("compress", dssp.CompressNone, "gradient codec on the wire: none, fp16, int8, topk")
		topk         = flag.Float64("topk", 0, "fraction of gradient entries the topk codec keeps (0 = default 0.1)")
		compressPull = flag.Bool("compress-pull", false, "also compress pulled weights (fp16/int8 codecs only)")
		seed         = flag.Int64("seed", 1, "seed for the initial weights (must match workers)")
	)
	flag.Parse()

	compression := dssp.Compression{Codec: *compressName, TopK: *topk, Pull: *compressPull}
	if err := run(*addr, *workers, *paradigm, *staleness, *rng, *enforce, *backups,
		*model, *classes, *examples, *imageSize, *lr, *momentum, *shards, compression, *seed); err != nil {
		log.Fatalf("psserver: %v", err)
	}
}

func run(addr string, workers int, paradigm string, staleness, rng int, enforce bool, backups int,
	model string, classes, examples, imageSize int, lr, momentum float64, shards int,
	compression dssp.Compression, seed int64) error {
	sync, err := parseSync(paradigm, staleness, rng, enforce, backups)
	if err != nil {
		return err
	}
	server, err := dssp.Serve(dssp.ServerConfig{
		Addr:    addr,
		Workers: workers,
		Sync:    sync,
		Model:   dssp.Model(model),
		Dataset: dssp.DatasetConfig{
			Examples: examples, Classes: classes, ImageSize: imageSize, Noise: 0.5, Seed: seed,
		},
		LearningRate: lr,
		Momentum:     momentum,
		Shards:       shards,
		Compression:  compression,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	defer server.Stop()
	fmt.Printf("parameter server listening on %s (%s, %d workers, codec %s)\n",
		server.Addr(), sync.Describe(), workers, compression)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-server.Done():
		fmt.Printf("all %d workers finished; %d updates applied\n", workers, server.Updates())
	case s := <-sigs:
		fmt.Printf("received %v; shutting down after %d updates\n", s, server.Updates())
	}
	return nil
}

func parseSync(paradigm string, staleness, rng int, enforce bool, backups int) (dssp.Sync, error) {
	switch paradigm {
	case "BSP":
		return dssp.Sync{Paradigm: dssp.BSP}, nil
	case "ASP":
		return dssp.Sync{Paradigm: dssp.ASP}, nil
	case "SSP":
		return dssp.Sync{Paradigm: dssp.SSP, Staleness: staleness}, nil
	case "DSSP":
		return dssp.Sync{Paradigm: dssp.DSSP, Staleness: staleness, Range: rng, EnforceBound: enforce}, nil
	case "BoundedDelay":
		return dssp.Sync{Paradigm: dssp.BoundedDelay, Staleness: staleness}, nil
	case "BackupBSP":
		return dssp.Sync{Paradigm: dssp.BackupBSP, Backups: backups}, nil
	default:
		return dssp.Sync{}, fmt.Errorf("unknown paradigm %q", paradigm)
	}
}
