// Command psserver runs a stand-alone DSSP parameter server over TCP.
//
// Example:
//
//	psserver -addr :7070 -workers 2 -paradigm DSSP -staleness 3 -range 12
//
// Workers started with cmd/psworker (using matching -model, -classes, -seed
// flags) connect to it and train a shared model under the selected
// synchronization paradigm.
//
// Wire format: -wire selects the TCP encoding — the versioned zero-copy
// binary frame protocol (the default; docs/PROTOCOL.md specifies it byte by
// byte) or the legacy gob stream. Workers must be started with the same
// -wire setting; a mismatch is detected on the first frame and reported on
// both sides instead of hanging.
//
// Gradient compression: -compress selects the gradient codec (none, fp16,
// int8, topk), -topk its keep fraction, and -compress-pull additionally
// compresses the weights workers pull. Workers launched with their default
// -compress auto adopt whatever the server speaks; an explicitly mismatched
// worker is rejected at registration.
//
// Delta pulls: -delta-pull (default on) grants version-gated delta pulls to
// workers that request them — each pull re-sends only the parameter-store
// shards that changed since that worker's previous pull (docs/PROTOCOL.md
// §5a). Set -delta-pull=false to force full pulls for A/B measurement.
//
// Fault tolerance: -elastic lease-monitors worker sessions (evicting any
// silent for -heartbeat-timeout) and accepts mid-run rejoins from workers
// started with -reconnect; -checkpoint-dir/-checkpoint-every persist the
// store so a restarted server resumes the run where it stopped.
//
// Server groups: -role places this server in a multi-server group
// (DESIGN.md §10). A coordinator (-role coordinator -cluster-servers N)
// owns the paradigm policy and the cluster map; data servers (-role data
// -peers <coordinator> -cluster-servers N -cluster-index i, or -shard-range
// lo:hi) each own a contiguous shard range of the store; a backup
// (-role backup -primary <data server>) replicates its primary's weights and
// requests promotion when the primary stays dead past -replicate-grace.
// Workers join the group with psworker -cluster -server <coordinator>.
//
// Aggregation tier: -role relay runs an aggregation relay (DESIGN.md §11)
// instead of a server: it registers a trunk with the root at -parent,
// accepts up to -fanout ordinary worker sessions on -addr, sums their
// gradients coordinate-wise, and forwards one ×k-weighted push per round —
// cutting the root's ingress from O(workers) to O(workers/fanout) frames.
// Workers join the tree with psworker -tree -server <root>; they learn
// their relay from the root's layout and re-parent if it dies. A partial
// stalled by a straggler is forwarded incomplete after -relay-flush.
//
// Observability: -metrics-addr starts an admin HTTP listener serving
// Prometheus /metrics, /healthz, a /statusz JSON snapshot, and
// net/http/pprof (docs/METRICS.md catalogs every series). -trace-every
// samples the push lifecycle (receive → guard → apply → release) for one in
// N pushes; -trace-dump prints the sampled traces as JSON lines at the end
// of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dssp"
)

func main() {
	var (
		addr         = flag.String("addr", ":7070", "TCP listen address")
		wire         = flag.String("wire", dssp.WireBinary, "TCP wire format: binary (versioned zero-copy frames, see docs/PROTOCOL.md) or gob (legacy); workers must match")
		workers      = flag.Int("workers", 2, "number of workers expected to join")
		paradigm     = flag.String("paradigm", "DSSP", "synchronization paradigm: BSP, ASP, SSP, DSSP, BoundedDelay, BackupBSP")
		staleness    = flag.Int("staleness", 3, "staleness threshold (SSP) or lower bound sL (DSSP)")
		rng          = flag.Int("range", 12, "DSSP threshold range r = sU - sL")
		enforce      = flag.Bool("enforce-bound", false, "use DSSP's strict Theorem-2 mode")
		backups      = flag.Int("backups", 1, "spare workers for BackupBSP")
		model        = flag.String("model", string(dssp.ModelSmallMLP), "model: small-mlp, small-cnn, alexnet-small, resnet-8")
		classes      = flag.Int("classes", 4, "number of classes in the synthetic dataset")
		examples     = flag.Int("examples", 512, "number of synthetic training examples")
		imageSize    = flag.Int("image-size", 16, "image size (or feature count for small-mlp)")
		lr           = flag.Float64("lr", 0.1, "learning rate")
		momentum     = flag.Float64("momentum", 0.0, "SGD momentum")
		shards       = flag.Int("shards", 0, "parameter-store shards (0 = one per CPU)")
		compressName = flag.String("compress", dssp.CompressNone, "gradient codec on the wire: none, fp16, int8, topk")
		topk         = flag.Float64("topk", 0, "fraction of gradient entries the topk codec keeps (0 = default 0.1)")
		compressPull = flag.Bool("compress-pull", false, "also compress pulled weights (fp16/int8 codecs only)")
		deltaPull    = flag.Bool("delta-pull", true, "grant version-gated delta pulls to workers that request them (send only changed shards)")
		aggName      = flag.String("aggregator", dssp.AggregateSum, "gradient aggregation: sum, clipped, trimmed-mean, median (robust kinds tolerate Byzantine workers)")
		clipNorm     = flag.Float64("clip-norm", 0, "per-tensor L2 cap for the clipped aggregator (required with -aggregator clipped)")
		guard        = flag.Bool("guard", false, "screen pushes for anomalies (norm outliers, lying clocks, floods) and evict repeat offenders")
		elastic      = flag.Bool("elastic", false, "tolerate worker churn: lease-monitor sessions, accept rejoins, finish when live workers finish")
		hbTimeout    = flag.Duration("heartbeat-timeout", 5*time.Second, "evict a session silent for this long (elastic mode)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for store checkpoints (restored on startup when present; empty = off)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint every N applied updates (0 = only on shutdown)")
		metricsAddr  = flag.String("metrics-addr", "", "admin HTTP listen address serving /metrics, /healthz, /statusz and pprof (empty = off)")
		traceEvery   = flag.Int("trace-every", 0, "sample the push lifecycle for 1 in N pushes (0 = default 64, negative = off)")
		traceDump    = flag.Bool("trace-dump", false, "print sampled push-lifecycle traces as JSON lines at end of run")
		seed         = flag.Int64("seed", 1, "seed for the initial weights (must match workers)")

		role           = flag.String("role", "", "role: coordinator, data, backup (server group, DESIGN.md §10), or relay (aggregation tier, DESIGN.md §11); empty = standalone server")
		peers          = flag.String("peers", "", "coordinator address (data and backup roles)")
		parent         = flag.String("parent", "", "root server address the relay forwards to (relay role)")
		fanout         = flag.Int("fanout", 4, "workers this relay aggregates per forwarded push (relay role)")
		flushInterval  = flag.Duration("relay-flush", 0, "how long a relay partial waits for straggling workers before forwarding incomplete (0 = default 50ms; relay role)")
		clusterServers = flag.Int("cluster-servers", 0, "number of data servers in the group (all cluster roles)")
		clusterIndex   = flag.Int("cluster-index", 0, "this server's slot in [0, cluster-servers) — which shard range it owns")
		shardRange     = flag.String("shard-range", "", "owned shard range as lo:hi, overriding -cluster-index (must match a layout assignment)")
		globalShards   = flag.Int("global-shards", 0, "group-wide store shard count (0 = two per data server); must match across the group")
		advertise      = flag.String("advertise", "", "address published in the cluster map (default: the listen address)")
		primary        = flag.String("primary", "", "the data server this backup replicates from (backup role)")
		replicateEvery = flag.Duration("replicate-every", 0, "backup replication poll cadence (0 = default 25ms)")
		replicateGrace = flag.Duration("replicate-grace", 0, "how long the primary may stay unreachable before the backup requests promotion (0 = default 2s)")
	)
	flag.Parse()

	if *role == "relay" {
		// A relay left on the default codec follows the parent, like a
		// worker's -compress auto; an explicit -compress must match exactly.
		relayCompress := dssp.Compression{Codec: dssp.CompressAuto, TopK: *topk, Pull: *compressPull}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "compress" {
				relayCompress.Codec = *compressName
			}
		})
		if err := runRelay(dssp.RelayConfig{
			Addr:              *addr,
			Advertise:         *advertise,
			Parent:            *parent,
			Fanout:            *fanout,
			Wire:              *wire,
			Compression:       relayCompress,
			HeartbeatTimeout:  *hbTimeout,
			HeartbeatInterval: *hbTimeout / 4,
			FlushInterval:     *flushInterval,
			MetricsAddr:       *metricsAddr,
		}); err != nil {
			log.Fatalf("psserver: %v", err)
		}
		return
	}

	cluster := dssp.ClusterOptions{
		Role:           *role,
		Coordinator:    *peers,
		Servers:        *clusterServers,
		Index:          *clusterIndex,
		GlobalShards:   *globalShards,
		Advertise:      *advertise,
		Primary:        *primary,
		ReplicateEvery: *replicateEvery,
		ReplicateGrace: *replicateGrace,
	}
	if *shardRange != "" {
		lo, hi, err := dssp.ParseShardRange(*shardRange)
		if err != nil {
			log.Fatalf("psserver: %v", err)
		}
		cluster.ShardLo, cluster.ShardHi = lo, hi
	}

	cfg := dssp.ServerConfig{
		Addr:         *addr,
		Wire:         *wire,
		Workers:      *workers,
		Model:        dssp.Model(*model),
		LearningRate: *lr,
		Momentum:     *momentum,
		Options: dssp.Options{
			Shards:           *shards,
			Compression:      dssp.Compression{Codec: *compressName, TopK: *topk, Pull: *compressPull},
			Aggregator:       dssp.Aggregator{Kind: *aggName, ClipNorm: *clipNorm},
			Guard:            dssp.Guard{Enabled: *guard},
			Elastic:          *elastic,
			HeartbeatTimeout: *hbTimeout,
			Checkpoint:       dssp.Checkpoint{Dir: *ckptDir, Every: *ckptEvery},
		},
		DisableDeltaPull: !*deltaPull,
		MetricsAddr:      *metricsAddr,
		TraceEvery:       *traceEvery,
		Seed:             *seed,
		Dataset: dssp.DatasetConfig{
			Examples: *examples, Classes: *classes, ImageSize: *imageSize, Noise: 0.5, Seed: *seed,
		},
		Cluster: cluster,
	}
	if err := run(cfg, *paradigm, *staleness, *rng, *enforce, *backups, *traceDump); err != nil {
		log.Fatalf("psserver: %v", err)
	}
}

// runRelay runs the aggregation-relay role until interrupted or until its
// trunk to the parent dies (workers then re-parent via a fresh layout fetch).
func runRelay(cfg dssp.RelayConfig) error {
	relay, err := dssp.ServeRelay(cfg)
	if err != nil {
		return err
	}
	defer relay.Stop()
	fmt.Printf("aggregation relay listening on %s (parent %s, fanout %d, wire %s)\n",
		relay.Addr(), cfg.Parent, cfg.Fanout, cfg.Wire)
	if cfg.MetricsAddr != "" {
		fmt.Printf("admin endpoint on http://%s (/metrics, /healthz, /debug/pprof)\n", relay.MetricsAddr())
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-relay.Done():
		if err := relay.Err(); err != nil {
			return err
		}
	case s := <-sigs:
		st := relay.Stats()
		fmt.Printf("received %v; shutting down after %d child pushes forwarded as %d partials\n",
			s, st.ChildPushes, st.ForwardedPushes)
	}
	st := relay.Stats()
	fmt.Printf("relay forwarded %d partials (%d bytes) for %d child pushes (%d bytes ingress)\n",
		st.ForwardedPushes, st.ForwardedBytes, st.ChildPushes, st.IngressBytes)
	return nil
}

func run(cfg dssp.ServerConfig, paradigm string, staleness, rng int, enforce bool, backups int, traceDump bool) error {
	sync, err := parseSync(paradigm, staleness, rng, enforce, backups)
	if err != nil {
		return err
	}
	cfg.Sync = sync
	server, err := dssp.Serve(cfg)
	if err != nil {
		return err
	}
	defer server.Stop()
	mode := "fixed membership"
	if cfg.Elastic {
		mode = "elastic"
	}
	fmt.Printf("parameter server listening on %s (%s, %d workers, wire %s, codec %s, aggregator %s, %s)\n",
		server.Addr(), sync.Describe(), cfg.Workers, cfg.Wire, cfg.Compression, cfg.Aggregator, mode)
	switch cfg.Cluster.Role {
	case dssp.RoleCoordinator:
		fmt.Printf("cluster coordinator for %d data servers (global shards auto unless -global-shards set)\n", cfg.Cluster.Servers)
	case dssp.RoleData:
		fmt.Printf("cluster data server (group of %d), announcing to coordinator %s\n", cfg.Cluster.Servers, cfg.Cluster.Coordinator)
	case dssp.RoleBackup:
		fmt.Printf("cluster backup replicating %s, promotion via coordinator %s\n", cfg.Cluster.Primary, cfg.Cluster.Coordinator)
	}
	if server.Restored() {
		fmt.Printf("restored checkpoint from %s at version %d\n", cfg.Checkpoint.Dir, server.Version())
	}
	if cfg.MetricsAddr != "" {
		fmt.Printf("admin endpoint on http://%s (/metrics, /healthz, /statusz, /debug/pprof)\n", server.MetricsAddr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-server.Failed():
		err := server.FailureErr()
		server.Stop()
		return err
	case <-server.Done():
		// One consistent snapshot feeds the whole summary.
		st := server.Status()
		fmt.Printf("all workers finished: %d updates applied, %d straggler updates dropped, %d releases, %d departures, %d rejoins (store version %d)\n",
			st.Pushes, st.Dropped, st.Releases, st.Departures, st.Rejoins, st.Version)
		if st.Guard.DroppedPushes > 0 || len(st.Guard.Evicted) > 0 {
			fmt.Printf("guard: %d pushes rejected, %d workers evicted\n", st.Guard.DroppedPushes, len(st.Guard.Evicted))
		}
		if acc, err := server.Evaluate(); err == nil {
			fmt.Printf("final model accuracy on held-out data: %.4f\n", acc)
		}
	case s := <-sigs:
		st := server.Status()
		fmt.Printf("received %v; shutting down after %d updates (%d dropped)\n", s, st.Pushes, st.Dropped)
	}
	if traceDump {
		for _, tr := range server.Traces() {
			if line, err := json.Marshal(tr); err == nil {
				fmt.Printf("trace: %s\n", line)
			}
		}
	}
	// Stop writes the final checkpoint (with -checkpoint-every 0 it is the
	// only one), so the failure check must come after it.
	server.Stop()
	if err := server.CheckpointError(); err != nil {
		fmt.Printf("warning: checkpoint write failed: %v\n", err)
	}
	return nil
}

func parseSync(paradigm string, staleness, rng int, enforce bool, backups int) (dssp.Sync, error) {
	switch paradigm {
	case "BSP":
		return dssp.Sync{Paradigm: dssp.BSP}, nil
	case "ASP":
		return dssp.Sync{Paradigm: dssp.ASP}, nil
	case "SSP":
		return dssp.Sync{Paradigm: dssp.SSP, Staleness: staleness}, nil
	case "DSSP":
		return dssp.Sync{Paradigm: dssp.DSSP, Staleness: staleness, Range: rng, EnforceBound: enforce}, nil
	case "BoundedDelay":
		return dssp.Sync{Paradigm: dssp.BoundedDelay, Staleness: staleness}, nil
	case "BackupBSP":
		return dssp.Sync{Paradigm: dssp.BackupBSP, Backups: backups}, nil
	default:
		return dssp.Sync{}, fmt.Errorf("unknown paradigm %q", paradigm)
	}
}
