// Command dsspsim runs one ad-hoc cluster simulation: a chosen model and
// paradigm on either the homogeneous 4×P100 cluster or the heterogeneous
// GTX1080Ti+GTX1060 cluster, reporting throughput, staleness and waiting-time
// statistics and the simulated accuracy curve.
//
// Example:
//
//	dsspsim -model resnet-110 -cluster het -paradigm DSSP -epochs 100
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dssp/internal/core"
	"dssp/internal/simulate"
)

func main() {
	var (
		model     = flag.String("model", "resnet-110", "model: alexnet-small, resnet-50, resnet-110")
		cluster   = flag.String("cluster", "hom", "cluster: hom (4xP100) or het (GTX1080Ti+GTX1060)")
		workers   = flag.Int("workers", 4, "worker count for the homogeneous cluster")
		paradigm  = flag.String("paradigm", "DSSP", "paradigm: BSP, ASP, SSP, DSSP, BoundedDelay, BackupBSP")
		staleness = flag.Int("staleness", 3, "SSP threshold / DSSP lower bound / bounded-delay k")
		rng       = flag.Int("range", 12, "DSSP range r")
		enforce   = flag.Bool("enforce-bound", false, "DSSP Theorem-2 mode")
		epochs    = flag.Int("epochs", 100, "training epochs to simulate")
		seed      = flag.Int64("seed", 1, "jitter seed")
	)
	flag.Parse()

	if err := run(*model, *cluster, *workers, *paradigm, *staleness, *rng, *enforce, *epochs, *seed); err != nil {
		log.Fatalf("dsspsim: %v", err)
	}
}

func run(model, cluster string, workers int, paradigm string, staleness, rng int, enforce bool, epochs int, seed int64) error {
	var profile simulate.ModelProfile
	switch model {
	case "alexnet-small":
		profile = simulate.ModelAlexNetSmall
	case "resnet-50":
		profile = simulate.ModelResNet50
	case "resnet-110":
		profile = simulate.ModelResNet110
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	var spec simulate.ClusterSpec
	switch cluster {
	case "hom":
		spec = simulate.HomogeneousCluster(workers)
	case "het":
		spec = simulate.HeterogeneousCluster()
	default:
		return fmt.Errorf("unknown cluster %q (use hom or het)", cluster)
	}
	p, err := core.ParseParadigm(paradigm)
	if err != nil {
		return err
	}
	policy := core.PolicyConfig{Paradigm: p, Staleness: staleness, Range: rng, EnforceBound: enforce, Backups: 1}

	iters := simulate.PaperEpochIterations(epochs, spec.NumWorkers())
	result, err := simulate.Run(simulate.RunConfig{
		Model:               profile,
		Cluster:             spec,
		Policy:              policy,
		IterationsPerWorker: iters,
		Seed:                seed,
	})
	if err != nil {
		return err
	}
	curve := simulate.AccuracyCurve(profile.Convergence, result, iters*spec.NumWorkers(), 20)

	fmt.Printf("model %s on %s, %s, %d epochs (%d iterations/worker)\n",
		profile.Name, spec.Name, policy.Describe(), epochs, iters)
	fmt.Printf("  completed in        %s\n", result.Finish.Round(time.Second))
	fmt.Printf("  updates applied     %d (%.1f/s)\n", len(result.Updates), result.Throughput())
	fmt.Printf("  dropped updates     %d\n", result.DroppedUpdates)
	fmt.Printf("  staleness           mean %.2f, p95 %d, max %d\n",
		result.MeanStaleness(), result.Staleness.Quantile(0.95), result.Staleness.Max())
	for w, wait := range result.Waits {
		fmt.Printf("  worker %d (%s) waited %s\n", w, spec.Workers[w].Name, wait.Round(time.Second))
	}
	fmt.Println("  accuracy curve:")
	for _, pt := range curve.Points() {
		fmt.Printf("    %8.0fs  %.4f\n", pt.Elapsed.Seconds(), pt.Value)
	}
	return nil
}
