// Command dsspsim runs one ad-hoc cluster simulation: a chosen model and
// paradigm on either the homogeneous 4×P100 cluster or the heterogeneous
// GTX1080Ti+GTX1060 cluster, reporting throughput, staleness and waiting-time
// statistics and the simulated accuracy curve.
//
// Example:
//
//	dsspsim -model resnet-110 -cluster het -paradigm DSSP -epochs 100
//
// Experiment mode: -experiment swaps the single simulation for the
// robustness scenario matrix (internal/experiment) — real training runs
// crossing {clean, 1-of-4 gradient-scale attacker} with {plain sum,
// trimmed-mean+guard}, plus a simulated hostile-network timing sweep. The
// aggregate detection/robustness table prints to stdout, -out writes the
// JSON report, -trials sets runs per cell, and -accuracy-floor makes the
// process exit nonzero when any cell that should converge (every cell
// except the deliberately undefended attacked one) falls below the floor —
// the CI smoke gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/experiment"
	"dssp/internal/nn"
	"dssp/internal/simulate"
	"dssp/internal/trainer"
)

func main() {
	var (
		model     = flag.String("model", "resnet-110", "model: alexnet-small, resnet-50, resnet-110")
		cluster   = flag.String("cluster", "hom", "cluster: hom (4xP100) or het (GTX1080Ti+GTX1060)")
		workers   = flag.Int("workers", 4, "worker count for the homogeneous cluster")
		paradigm  = flag.String("paradigm", "DSSP", "paradigm: BSP, ASP, SSP, DSSP, BoundedDelay, BackupBSP")
		staleness = flag.Int("staleness", 3, "SSP threshold / DSSP lower bound / bounded-delay k")
		rng       = flag.Int("range", 12, "DSSP range r")
		enforce   = flag.Bool("enforce-bound", false, "DSSP Theorem-2 mode")
		epochs    = flag.Int("epochs", 100, "training epochs to simulate")
		seed      = flag.Int64("seed", 1, "jitter seed")
		experFlag = flag.Bool("experiment", false, "run the robustness scenario matrix instead of a single simulation")
		trials    = flag.Int("trials", 1, "experiment mode: training runs per matrix cell")
		out       = flag.String("out", "", "experiment mode: write the JSON report to this file")
		accFloor  = flag.Float64("accuracy-floor", 0, "experiment mode: exit 1 if any cell expected to converge falls below this accuracy")
	)
	flag.Parse()

	if *experFlag {
		if err := runExperiment(*paradigm, *staleness, *rng, *enforce, *trials, *seed, *out, *accFloor); err != nil {
			log.Fatalf("dsspsim: %v", err)
		}
		return
	}
	if err := run(*model, *cluster, *workers, *paradigm, *staleness, *rng, *enforce, *epochs, *seed); err != nil {
		log.Fatalf("dsspsim: %v", err)
	}
}

// runExperiment executes the scenario matrix: the 2x2 robustness grid on
// real training plus the simulated hostile-network timing sweep.
func runExperiment(paradigm string, staleness, rng int, enforce bool, trials int, seed int64, out string, accFloor float64) error {
	p, err := core.ParseParadigm(paradigm)
	if err != nil {
		return err
	}
	policy := core.PolicyConfig{Paradigm: p, Staleness: staleness, Range: rng, EnforceBound: enforce, Backups: 1}

	report, err := experiment.Run(experiment.ScenarioConfig{
		Name:   fmt.Sprintf("robustness matrix (%s)", policy.Describe()),
		Base:   experimentBase(policy, seed),
		Trials: trials,
		Attacks: []experiment.Attack{
			experiment.CleanBaseline(),
			experiment.GradScaleAttack(-10, 3),
		},
		Defenses: []experiment.Defense{
			experiment.SumDefense(),
			experiment.GuardedDefense(experiment.TrimmedMeanDefense()),
		},
	})
	if err != nil {
		return err
	}
	report.Timing, err = experiment.TimingMatrix(experiment.TimingMatrixConfig{
		Policies: []core.PolicyConfig{policy},
		Trials:   trials,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	// A second sweep contrasts topologies: the same paradigm on a 16-worker
	// cluster flat versus behind fanout-4 and fanout-8 relay tiers, showing
	// the root-ingress cut in frames and bytes.
	topo, err := experiment.TimingMatrix(experiment.TimingMatrixConfig{
		Cluster:   simulate.HomogeneousCluster(16),
		Policies:  []core.PolicyConfig{policy},
		Scenarios: []experiment.NetworkScenario{experiment.CalmNetwork()},
		Fanouts:   []int{0, 4, 8},
		Trials:    trials,
		Seed:      seed,
	})
	report.Timing = append(report.Timing, topo...)
	if err != nil {
		return err
	}

	fmt.Print(report.Table())
	if out != "" {
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}

	if accFloor > 0 {
		// Every cell except the deliberately undefended attacked one must
		// clear the floor: the clean cells prove training works, the
		// defended attacked cell proves the defense does.
		for _, c := range report.Cells {
			sacrificial := c.Attackers > 0 && c.Defense == experiment.SumDefense().Name
			if sacrificial {
				continue
			}
			if c.MeanAccuracy < accFloor {
				return fmt.Errorf("cell (%s, %s) accuracy %.4f below floor %.4f", c.Attack, c.Defense, c.MeanAccuracy, accFloor)
			}
		}
		fmt.Printf("all convergent cells above accuracy floor %.2f\n", accFloor)
	}
	return nil
}

// experimentBase is the real-training workload behind every matrix cell: a
// four-worker run on the easy synthetic task, sized to finish a cell in
// tens of milliseconds.
func experimentBase(policy core.PolicyConfig, seed int64) trainer.Config {
	full := data.MustSynthetic(data.SyntheticConfig{
		Examples: 176, Classes: 3, Channels: 1, Size: 12, Noise: 0.4, Flat: true, Seed: 11,
	})
	trainIdx := make([]int, 128)
	testIdx := make([]int, 48)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = 128 + i
	}
	return trainer.Config{
		Model:        nn.SpecSmallMLP(12, 16, 3),
		Train:        full.Subset(trainIdx),
		Test:         full.Subset(testIdx),
		Workers:      4,
		BatchSize:    8,
		Epochs:       6,
		Policy:       policy,
		LearningRate: 0.1,
		Seed:         seed,
	}
}

func run(model, cluster string, workers int, paradigm string, staleness, rng int, enforce bool, epochs int, seed int64) error {
	var profile simulate.ModelProfile
	switch model {
	case "alexnet-small":
		profile = simulate.ModelAlexNetSmall
	case "resnet-50":
		profile = simulate.ModelResNet50
	case "resnet-110":
		profile = simulate.ModelResNet110
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	var spec simulate.ClusterSpec
	switch cluster {
	case "hom":
		spec = simulate.HomogeneousCluster(workers)
	case "het":
		spec = simulate.HeterogeneousCluster()
	default:
		return fmt.Errorf("unknown cluster %q (use hom or het)", cluster)
	}
	p, err := core.ParseParadigm(paradigm)
	if err != nil {
		return err
	}
	policy := core.PolicyConfig{Paradigm: p, Staleness: staleness, Range: rng, EnforceBound: enforce, Backups: 1}

	iters := simulate.PaperEpochIterations(epochs, spec.NumWorkers())
	result, err := simulate.Run(simulate.RunConfig{
		Model:               profile,
		Cluster:             spec,
		Policy:              policy,
		IterationsPerWorker: iters,
		Seed:                seed,
	})
	if err != nil {
		return err
	}
	curve := simulate.AccuracyCurve(profile.Convergence, result, iters*spec.NumWorkers(), 20)

	fmt.Printf("model %s on %s, %s, %d epochs (%d iterations/worker)\n",
		profile.Name, spec.Name, policy.Describe(), epochs, iters)
	fmt.Printf("  completed in        %s\n", result.Finish.Round(time.Second))
	fmt.Printf("  updates applied     %d (%.1f/s)\n", len(result.Updates), result.Throughput())
	fmt.Printf("  dropped updates     %d\n", result.DroppedUpdates)
	fmt.Printf("  staleness           mean %.2f, p95 %d, max %d\n",
		result.MeanStaleness(), result.Staleness.Quantile(0.95), result.Staleness.Max())
	for w, wait := range result.Waits {
		fmt.Printf("  worker %d (%s) waited %s\n", w, spec.Workers[w].Name, wait.Round(time.Second))
	}
	fmt.Println("  accuracy curve:")
	for _, pt := range curve.Points() {
		fmt.Printf("    %8.0fs  %.4f\n", pt.Elapsed.Seconds(), pt.Value)
	}
	return nil
}
