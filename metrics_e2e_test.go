package dssp

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrape fetches a Prometheus /metrics endpoint and parses every
// non-histogram-bucket sample line into series -> value.
func scrape(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestMetricsEndpointDuringTCPRun starts a 4-worker TCP training run with
// the admin endpoint enabled, scrapes /metrics while training is live, and
// checks afterwards that every cataloged series is exposed and that the
// unified counters agree with the server's status snapshot and traces.
func TestMetricsEndpointDuringTCPRun(t *testing.T) {
	dataset := DatasetConfig{Examples: 128, Classes: 2, ImageSize: 8, Noise: 0.4, Seed: 11}
	const workers = 4
	server, err := Serve(ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      workers,
		Sync:         DefaultDSSP(),
		Model:        ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		Seed:         5,
		MetricsAddr:  "127.0.0.1:0",
		TraceEvery:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()
	if server.MetricsAddr() == "" {
		t.Fatal("admin endpoint not started")
	}

	reports := make(chan *WorkerReport, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cfg := WorkerConfig{
				ServerAddr: server.Addr(),
				WorkerID:   w,
				Workers:    workers,
				Model:      ModelSmallMLP,
				Dataset:    dataset,
				BatchSize:  8,
				Epochs:     4,
				Seed:       5,
				// Slow iterations down so the mid-run scrape lands while
				// training is genuinely live.
				Delay:   5 * time.Millisecond,
				Options: Options{DeltaPull: true},
			}
			if w == 0 {
				cfg.MetricsAddr = "127.0.0.1:0" // one worker exposes its own admin endpoint
			}
			rep, err := RunWorker(cfg)
			if err != nil {
				errs <- err
				return
			}
			reports <- rep
		}(w)
	}

	// Scrape mid-training: poll until pushes show up while workers still run.
	deadline := time.Now().Add(30 * time.Second)
	var live map[string]float64
	for {
		live = scrape(t, server.MetricsAddr())
		if live["dssp_push_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no pushes observed on /metrics within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if live["dssp_sessions_active"] < 1 && live["dssp_workers_finished"] < workers {
		t.Errorf("mid-run dssp_sessions_active = %v, want >= 1", live["dssp_sessions_active"])
	}

	var iterations int
	for i := 0; i < workers; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case rep := <-reports:
			iterations += rep.Iterations
		case <-time.After(60 * time.Second):
			t.Fatal("worker timed out")
		}
	}
	select {
	case <-server.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("server never observed completion")
	}

	final := scrape(t, server.MetricsAddr())
	// Every cataloged server-side series (docs/METRICS.md) must be exposed,
	// even the ones this clean run never increments.
	catalog := []string{
		"dssp_push_total",
		`dssp_push_dropped_total{reason="policy"}`,
		`dssp_push_dropped_total{reason="guard"}`,
		"dssp_release_total",
		"dssp_departures_total",
		"dssp_rejoins_total",
		"dssp_push_staleness_sum",
		"dssp_push_staleness_count",
		`dssp_push_phase_seconds_sum{phase="decode"}`,
		`dssp_push_phase_seconds_count{phase="guard"}`,
		`dssp_push_phase_seconds_count{phase="policy"}`,
		"dssp_release_lag_seconds_count",
		"dssp_pull_total",
		"dssp_pull_seconds_count",
		`dssp_pull_shard_chunks_total{result="full"}`,
		`dssp_pull_shard_chunks_total{result="unchanged"}`,
		"dssp_guard_flags_total",
		"dssp_guard_evictions_total",
		"dssp_cluster_map_requests_total",
		"dssp_cluster_announces_total",
		"dssp_cluster_promotions_total",
		"dssp_checkpoint_total",
		"dssp_checkpoint_errors_total",
		"dssp_checkpoint_last_failed",
		"dssp_checkpoint_seconds_count",
		"dssp_checkpoint_shards_written_total",
		"dssp_checkpoint_bytes_written_total",
		"dssp_store_apply_batch_size_sum",
		"dssp_store_apply_seconds_count",
		"dssp_store_clone_seconds_count",
		"dssp_store_clone_reuse_total",
		"dssp_store_clone_alloc_total",
		"dssp_sessions_active",
		"dssp_workers_finished",
		"dssp_store_version",
		"dssp_store_reserved",
		"dssp_store_queue_depth",
		"dssp_store_shards",
		"dssp_store_window",
		`dssp_transport_frames_total{dir="recv",type="Push"}`,
		`dssp_transport_frames_total{dir="sent",type="OK"}`,
		`dssp_transport_bytes_total{dir="recv",type="Push"}`,
		"dssp_transport_batch_size_count",
	}
	for _, series := range catalog {
		if _, ok := final[series]; !ok {
			t.Errorf("cataloged series %q missing from /metrics", series)
		}
	}

	// The unified counters, the public accessors, and /statusz must agree.
	st := server.Status()
	if got := final["dssp_push_total"]; got != float64(st.Pushes) {
		t.Errorf("dssp_push_total = %v, status says %d", got, st.Pushes)
	}
	if st.Pushes == 0 || int(st.Pushes) > iterations {
		t.Errorf("status pushes = %d with %d worker iterations", st.Pushes, iterations)
	}
	if final["dssp_pull_total"] < float64(workers) {
		t.Errorf("dssp_pull_total = %v, want >= %d", final["dssp_pull_total"], workers)
	}
	if final["dssp_store_version"] != float64(st.Version) {
		t.Errorf("dssp_store_version = %v, status version %d", final["dssp_store_version"], st.Version)
	}
	if final["dssp_workers_finished"] != workers {
		t.Errorf("dssp_workers_finished = %v, want %d", final["dssp_workers_finished"], workers)
	}
	if final[`dssp_transport_frames_total{dir="recv",type="Push"}`] < float64(st.Pushes) {
		t.Errorf("transport saw %v push frames, server applied %d",
			final[`dssp_transport_frames_total{dir="recv",type="Push"}`], st.Pushes)
	}
	if final[`dssp_transport_bytes_total{dir="recv",type="Push"}`] <= 0 {
		t.Error("no push bytes metered on the transport")
	}

	// /statusz renders the same snapshot as JSON.
	resp, err := http.Get("http://" + server.MetricsAddr() + "/statusz?traces=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statusz struct {
		Status struct {
			Workers  int    `json:"workers"`
			Pushes   uint64 `json:"pushes"`
			Version  int64  `json:"version"`
			Sessions []struct {
				Worker int `json:"worker"`
			} `json:"sessions"`
		} `json:"status"`
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statusz); err != nil {
		t.Fatalf("/statusz decode: %v", err)
	}
	if statusz.Status.Workers != workers {
		t.Errorf("/statusz workers = %d, want %d", statusz.Status.Workers, workers)
	}
	if statusz.Status.Pushes != st.Pushes || statusz.Status.Version != st.Version {
		t.Errorf("/statusz (pushes=%d version=%d) disagrees with Status() (pushes=%d version=%d)",
			statusz.Status.Pushes, statusz.Status.Version, st.Pushes, st.Version)
	}

	// TraceEvery=1 traces every push; completed traces must be well-formed.
	traces := server.Traces()
	if len(traces) == 0 {
		t.Fatal("no push traces recorded with TraceEvery=1")
	}
	if len(statusz.Traces) != len(traces) {
		t.Errorf("/statusz returned %d traces, server holds %d", len(statusz.Traces), len(traces))
	}
	for _, tr := range traces {
		if tr.Dropped != "" {
			continue
		}
		if tr.Ticket == 0 || tr.ReceivedAt.IsZero() || tr.EnqueuedAt.IsZero() ||
			tr.AppliedAt.IsZero() || tr.ReleasedAt.IsZero() {
			t.Fatalf("applied trace missing lifecycle stamps: %+v", tr)
		}
		if tr.AppliedAt.Before(tr.EnqueuedAt) || tr.ReleasedAt.Before(tr.AppliedAt) {
			t.Fatalf("trace stamps out of order: %+v", tr)
		}
	}
}

// TestWorkerMetricsEndpoint checks the worker-side admin endpoint exposes
// the worker and transport series for a short TCP run.
func TestWorkerMetricsEndpoint(t *testing.T) {
	dataset := DatasetConfig{Examples: 64, Classes: 2, ImageSize: 8, Noise: 0.4, Seed: 13}
	server, err := Serve(ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      1,
		Sync:         Sync{Paradigm: ASP},
		Model:        ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	done := make(chan error, 1)
	addrs := make(chan string, 1)
	go func() {
		_, err := RunWorker(WorkerConfig{
			ServerAddr:  server.Addr(),
			WorkerID:    0,
			Workers:     1,
			Model:       ModelSmallMLP,
			Dataset:     dataset,
			BatchSize:   8,
			Epochs:      3,
			Seed:        5,
			MetricsAddr: "127.0.0.1:0",
			OnAdminAddr: func(addr string) { addrs <- addr },
		})
		done <- err
	}()

	var addr string
	select {
	case addr = <-addrs:
	case err := <-done:
		t.Fatalf("worker exited before exposing admin endpoint: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("worker admin endpoint never came up")
	}
	// Scrape while the worker trains; series exist from registration even
	// if the first iteration has not finished.
	mid := scrape(t, addr)
	for _, series := range []string{
		"dssp_worker_pull_seconds_count",
		"dssp_worker_push_rtt_seconds_count",
		"dssp_worker_iterations_total",
	} {
		if _, ok := mid[series]; !ok {
			t.Errorf("worker series %q missing from /metrics", series)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// After the run the endpoint is closed with the worker, so assert on
	// the last scrape we could take; the transport must have metered the
	// worker's pushes.
	found := false
	for series := range mid {
		if strings.HasPrefix(series, "dssp_transport_frames_total{") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no transport series on the worker endpoint: %v", keys(mid))
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
