package dssp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dssp/internal/simulate"
)

// SimulationConfig controls how the paper's evaluation is regenerated on the
// built-in cluster simulator.
type SimulationConfig struct {
	// Epochs is the number of simulated training epochs (paper: 300).
	// Smaller values run faster; the curve shapes are unchanged.
	Epochs int
	// Seed drives compute-time jitter.
	Seed int64
	// Points is the approximate number of samples per accuracy curve.
	Points int
}

// experimentConfig converts to the internal representation.
func (c SimulationConfig) experimentConfig() simulate.ExperimentConfig {
	return simulate.ExperimentConfig{Epochs: c.Epochs, Seed: c.Seed, Points: c.Points}
}

// Curve is one accuracy-versus-time curve of a regenerated figure.
type Curve struct {
	// Label is the legend entry (e.g. "DSSP s=3 r=12").
	Label string
	// Times and Accuracies are the sampled points, aligned by index.
	Times      []time.Duration
	Accuracies []float64
	// FinalAccuracy is the last sampled accuracy.
	FinalAccuracy float64
	// Finish is the simulated time at which the run completed all epochs.
	Finish time.Duration
	// MeanStaleness is the average staleness of applied updates (absent for
	// derived curves such as the averaged SSP).
	MeanStaleness float64
}

// TimeToAccuracy returns the first time the curve reached the target.
func (c Curve) TimeToAccuracy(target float64) (time.Duration, bool) {
	for i, a := range c.Accuracies {
		if a >= target {
			return c.Times[i], true
		}
	}
	return 0, false
}

// FigureResult is a regenerated figure of the paper.
type FigureResult struct {
	// ID is the paper identifier: "fig2", "fig3a".."fig3f", "fig4".
	ID string
	// Title describes the experiment.
	Title string
	// Curves holds the figure's curves in legend order.
	Curves []Curve
}

// Curve returns the curve with the given label.
func (f *FigureResult) Curve(label string) (Curve, bool) {
	for _, c := range f.Curves {
		if c.Label == label {
			return c, true
		}
	}
	return Curve{}, false
}

// FigureIDs lists the reproducible figure identifiers in paper order.
func FigureIDs() []string {
	return []string{"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig4"}
}

// Figure regenerates one of the paper's figures on the cluster simulator.
// Valid identifiers are returned by FigureIDs.
func Figure(id string, cfg SimulationConfig) (*FigureResult, error) {
	runners := map[string]func(simulate.ExperimentConfig) (*simulate.Figure, error){
		"fig3a": simulate.Figure3a,
		"fig3b": simulate.Figure3b,
		"fig3c": simulate.Figure3c,
		"fig3d": simulate.Figure3d,
		"fig3e": simulate.Figure3e,
		"fig3f": simulate.Figure3f,
		"fig4":  simulate.Figure4,
	}
	run, ok := runners[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("dssp: unknown figure %q (valid: %s)", id, strings.Join(FigureIDs(), ", "))
	}
	fig, err := run(cfg.experimentConfig())
	if err != nil {
		return nil, err
	}
	return convertFigure(fig), nil
}

// convertFigure maps the internal figure representation to the public one.
func convertFigure(fig *simulate.Figure) *FigureResult {
	out := &FigureResult{ID: fig.ID, Title: fig.Title}
	for _, r := range fig.Results {
		c := Curve{Label: r.Label, FinalAccuracy: r.FinalAccuracy, Finish: r.Finish}
		for _, p := range r.Curve.Points() {
			c.Times = append(c.Times, p.Elapsed)
			c.Accuracies = append(c.Accuracies, p.Value)
		}
		if r.Run != nil {
			c.MeanStaleness = r.Run.MeanStaleness()
		}
		out.Curves = append(out.Curves, c)
	}
	return out
}

// TableIRow is one row of the paper's Table I: time for a paradigm to reach
// the target test accuracies on the heterogeneous cluster.
type TableIRow struct {
	// Paradigm is the row label.
	Paradigm string
	// To067 and To068 are the times to reach 0.67 and 0.68 accuracy.
	To067, To068 time.Duration
	// Reached067 and Reached068 report whether the targets were reached at
	// all (the paper prints "-" otherwise).
	Reached067, Reached068 bool
}

// TableI regenerates Table I (time to reach 0.67 / 0.68 test accuracy when
// training ResNet-110 on the heterogeneous two-GPU cluster).
func TableI(cfg SimulationConfig) ([]TableIRow, error) {
	rows, err := simulate.TableI(cfg.experimentConfig())
	if err != nil {
		return nil, err
	}
	out := make([]TableIRow, len(rows))
	for i, r := range rows {
		out[i] = TableIRow{
			Paradigm:   r.Label,
			To067:      r.To067,
			Reached067: r.Reached067,
			To068:      r.To068,
			Reached068: r.Reached068,
		}
	}
	return out, nil
}

// PredictionCurve reproduces the situation of Figure 2: for a fast and a slow
// worker with the given iteration intervals, it returns the predicted waiting
// time of the fast worker for each candidate number of extra iterations r in
// [0, rmax], and the r* the DSSP synchronization controller selects.
func PredictionCurve(fastInterval, slowInterval time.Duration, rmax int) (waits []time.Duration, selected int, err error) {
	return simulate.Figure2Waits(fastInterval, slowInterval, rmax)
}

// ThroughputTrend summarizes §V-C of the paper for one model: how long each
// paradigm needs to complete the full training run on the homogeneous
// cluster.
type ThroughputTrend struct {
	// Model is the architecture name.
	Model string
	// HasFullyConnected reports the model category of §V-C.
	HasFullyConnected bool
	// FinishTimes maps paradigm label to completion time, and Order lists
	// the labels from fastest to slowest.
	FinishTimes map[string]time.Duration
	Order       []string
}

// ThroughputTrends regenerates the §V-C comparison of completion times for
// every paper model on the homogeneous cluster.
func ThroughputTrends(cfg SimulationConfig) ([]ThroughputTrend, error) {
	trends, err := simulate.SectionVCThroughputTrends(cfg.experimentConfig())
	if err != nil {
		return nil, err
	}
	out := make([]ThroughputTrend, len(trends))
	for i, tr := range trends {
		t := ThroughputTrend{
			Model:             tr.Model,
			HasFullyConnected: tr.HasFullyConnected,
			FinishTimes:       tr.FinishTimes,
		}
		for label := range tr.FinishTimes {
			t.Order = append(t.Order, label)
		}
		sort.Slice(t.Order, func(a, b int) bool {
			return tr.FinishTimes[t.Order[a]] < tr.FinishTimes[t.Order[b]]
		})
		out[i] = t
	}
	return out, nil
}
