package dssp

import (
	"time"

	"dssp/internal/ps"
	"dssp/internal/trainer"
)

// Adversary makes one worker Byzantine for robustness experiments: it still
// computes honest gradients from its data shard, then corrupts what it tells
// the server. The zero value is honest. An adversarial worker is expected to
// be neutralized — its updates out-voted by a robust Aggregator, or the
// worker evicted by the Guard — so its connection dying mid-run counts as a
// crash, not an error.
type Adversary struct {
	// GradScale multiplies every pushed gradient (after sign flipping);
	// 0 means 1. Large positive values model gradient-scaling poisoning,
	// e.g. 10 or -10.
	GradScale float64
	// SignFlip negates every pushed gradient — ascent instead of descent.
	SignFlip bool
	// LieVersion claims an impossibly fresh base version on every push (a
	// lying clock), defeating staleness accounting unless the Guard catches
	// it.
	LieVersion bool
}

// internalAdversaries converts the public adversary map into the trainer's.
func internalAdversaries(m map[int]Adversary) map[int]trainer.Adversary {
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]trainer.Adversary, len(m))
	for w, a := range m {
		out[w] = trainer.Adversary{GradScale: a.GradScale, SignFlip: a.SignFlip, LieVersion: a.LieVersion}
	}
	return out
}

// Aggregator names for Aggregator.Kind.
const (
	// AggregateSum sums pushed gradients — the classic parameter-server
	// update and the default. Undefended: one Byzantine worker scaling its
	// gradients steers the whole model.
	AggregateSum = ps.AggSum
	// AggregateClipped caps each push's per-tensor L2 norm before summing,
	// bounding any single worker's influence on an update.
	AggregateClipped = ps.AggClipped
	// AggregateTrimmedMean applies the coordinate-wise trimmed mean over a
	// window of pushes, discarding the extremes each coordinate saw.
	AggregateTrimmedMean = ps.AggTrimmedMean
	// AggregateMedian applies the coordinate-wise median over a window of
	// pushes — the most aggressive robust estimator.
	AggregateMedian = ps.AggMedian
)

// Aggregator selects how the parameter server reduces pushed gradients into
// optimizer steps. The zero value is plain summation, bit-identical to the
// classic pipeline; the robust kinds trade a little aggregation latency for
// tolerance of Byzantine (poisoned) gradients.
type Aggregator struct {
	// Kind is AggregateSum (""), AggregateClipped, AggregateTrimmedMean or
	// AggregateMedian.
	Kind string
	// ClipNorm is the per-tensor L2 cap for AggregateClipped; required
	// positive for that kind, ignored elsewhere.
	ClipNorm float64
	// Trim is the per-side trim fraction in [0, 0.5) for
	// AggregateTrimmedMean; 0 selects the default (0.25).
	Trim float64
	// Window is how many pushes the windowed kinds aggregate per step; 0
	// lets the server pick (the worker count). Partial windows are
	// force-published whenever a release waits on them, so per-push
	// paradigms (ASP/SSP/DSSP) stay live.
	Window int
}

// internal converts the public knob into the ps-layer configuration.
func (a Aggregator) internal() ps.AggregatorConfig {
	return ps.AggregatorConfig{Kind: a.Kind, ClipNorm: a.ClipNorm, Trim: a.Trim, Window: a.Window}
}

// String renders the configuration, e.g. "trimmed-mean(0.25)/w4".
func (a Aggregator) String() string { return a.internal().String() }

// Guard configures server-side anomaly screening: pushes with outlier
// gradient norms, impossible version claims, or flood-like cadence are
// dropped, and workers that keep offending are evicted from the run exactly
// like workers whose lease expired. The zero value screens nothing.
type Guard struct {
	// Enabled turns the guard on.
	Enabled bool
	// NormFactor flags pushes whose gradient norm exceeds this multiple of
	// the trailing median; 0 selects the default (8). Negative disables the
	// norm check while keeping the clock checks.
	NormFactor float64
	// MaxStrikes is how many flagged pushes evict a worker; 0 selects the
	// default (3).
	MaxStrikes int
	// FloodSlack is how many pushes per pull a worker may make before being
	// flagged; 0 selects the default (3).
	FloodSlack int
}

// internal converts the public knob into the ps-layer configuration.
func (g Guard) internal() ps.GuardConfig {
	return ps.GuardConfig{Enabled: g.Enabled, NormFactor: g.NormFactor,
		MaxStrikes: g.MaxStrikes, FloodSlack: g.FloodSlack}
}

// Options is the serving surface shared by every way of standing up a
// cluster — TrainConfig (in-process), ServerConfig and WorkerConfig (TCP) —
// which embed it, so cfg.Compression and friends read exactly as before the
// consolidation. A few fields are one-sided and ignored by the other role:
// Aggregator, Guard, Elastic, HeartbeatTimeout and Checkpoint act on the
// server; DeltaPull and HeartbeatInterval act on workers. TrainConfig drives
// both sides, so every field applies there.
type Options struct {
	// Shards is the number of independently locked parameter-store
	// partitions (0 = one per CPU). Pulls from different workers read shards
	// concurrently and gradient application parallelizes across shards. On
	// WorkerConfig it is instead the expected server layout: positive values
	// are checked at registration, 0 accepts any.
	Shards int
	// Compression selects the gradient codec on the worker↔server wire; the
	// zero value trains uncompressed. On WorkerConfig an empty codec means
	// "adopt whatever the server speaks".
	Compression Compression
	// Aggregator selects how the server reduces pushed gradients into
	// optimizer steps; the zero value is plain summation.
	Aggregator Aggregator
	// Guard enables server-side anomaly screening and eviction.
	Guard Guard
	// DeltaPull makes workers request version-gated delta pulls, skipping
	// the re-download of parameter-store shards unchanged since the
	// worker's previous pull.
	DeltaPull bool
	// Elastic enables worker-churn tolerance on the server: sessions are
	// lease-monitored and a silent worker is evicted from synchronization
	// accounting instead of stalling its peers. A dead connection always
	// notifies the policy, Elastic or not.
	Elastic bool
	// HeartbeatInterval is how often workers prove liveness; 0 disables
	// heartbeats. Set it on elastic runs — a worker silent past
	// HeartbeatTimeout is evicted.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the server-side session lease in elastic mode; 0
	// picks the default (5s).
	HeartbeatTimeout time.Duration
	// Checkpoint periodically snapshots the parameter store to disk.
	Checkpoint Checkpoint
}

// serverOptions maps the public surface onto the ps-layer option set the
// server consumes — the one defaulting+validation funnel for every caller.
func (o Options) serverOptions() ps.Options {
	return ps.Options{
		Compression:      o.Compression.internal(),
		Aggregator:       o.Aggregator.internal(),
		Guard:            o.Guard.internal(),
		Elastic:          o.Elastic,
		HeartbeatTimeout: o.HeartbeatTimeout,
		Checkpoint:       o.Checkpoint.internal(),
	}
}
