// Package dssp is a Go implementation of Dynamic Stale Synchronous Parallel
// distributed training (Zhao et al., ICDCS 2019) together with the parameter
// server framework it runs on and the classic synchronization paradigms it is
// compared against (BSP, ASP, SSP, bounded delay and backup-worker BSP).
//
// The package offers three entry points:
//
//   - Train runs real data-parallel SGD on a single machine: worker
//     goroutines with their own model replicas exchange gradients and weights
//     with an in-process parameter server under the chosen paradigm.
//   - Serve and RunWorker deploy the same parameter server and worker over
//     TCP for multi-process or multi-machine training.
//   - Figure and TableI regenerate the paper's evaluation on the built-in
//     cluster simulator.
//
// The underlying building blocks (synchronization policies, tensors, neural
// network layers, the simulator) live in internal packages; this package is
// the stable public surface.
package dssp

import (
	"fmt"

	"dssp/internal/core"
)

// Paradigm identifies a synchronization paradigm.
type Paradigm = core.Paradigm

// Supported paradigms.
const (
	// BSP is Bulk Synchronous Parallel: all workers synchronize at a barrier
	// every iteration.
	BSP = core.ParadigmBSP
	// ASP is Asynchronous Parallel: workers never wait for each other.
	ASP = core.ParadigmASP
	// SSP is Stale Synchronous Parallel with a fixed staleness threshold.
	SSP = core.ParadigmSSP
	// DSSP is the paper's Dynamic Stale Synchronous Parallel: the staleness
	// threshold is chosen at run time from a range [sL, sL+Range].
	DSSP = core.ParadigmDSSP
	// BoundedDelay is the related-work baseline of Li et al. (2014).
	BoundedDelay = core.ParadigmBoundedDelay
	// BackupBSP is the backup-worker synchronous SGD of Chen et al. (2016).
	BackupBSP = core.ParadigmBackupBSP
)

// Sync selects a synchronization paradigm and its parameters.
type Sync struct {
	// Paradigm is the synchronization scheme.
	Paradigm Paradigm
	// Staleness is the fixed threshold s for SSP, the lower bound sL for
	// DSSP, and the dependency bound k for BoundedDelay.
	Staleness int
	// Range is rmax = sU − sL for DSSP (the paper's evaluation uses
	// Staleness=3, Range=12, i.e. thresholds in [3, 15]).
	Range int
	// EnforceBound selects DSSP's strict Theorem-2 mode in which the
	// iteration gap is hard-capped at Staleness+Range. The default (false)
	// is the listing-faithful behaviour that reproduces the paper's
	// measurements.
	EnforceBound bool
	// Backups is the number of spare workers for BackupBSP.
	Backups int
}

// DefaultDSSP returns the paper's DSSP configuration: sL=3, r=12.
func DefaultDSSP() Sync { return Sync{Paradigm: DSSP, Staleness: 3, Range: 12} }

// policyConfig converts the public Sync value into the internal form.
func (s Sync) policyConfig() core.PolicyConfig {
	return core.PolicyConfig{
		Paradigm:     s.Paradigm,
		Staleness:    s.Staleness,
		Range:        s.Range,
		EnforceBound: s.EnforceBound,
		Backups:      s.Backups,
	}
}

// Describe returns a short human-readable description such as
// "DSSP sL=3 r=12".
func (s Sync) Describe() string { return s.policyConfig().Describe() }

// Validate reports whether the combination of paradigm and parameters is
// usable with the given number of workers.
func (s Sync) Validate(workers int) error {
	cfg := s.policyConfig()
	cfg.Workers = workers
	if _, err := core.NewPolicy(cfg); err != nil {
		return fmt.Errorf("dssp: invalid synchronization config: %w", err)
	}
	return nil
}
