package dssp

import (
	"testing"
	"time"
)

func TestSyncDescribeAndValidate(t *testing.T) {
	cases := []struct {
		sync    Sync
		workers int
		wantErr bool
	}{
		{DefaultDSSP(), 4, false},
		{Sync{Paradigm: BSP}, 4, false},
		{Sync{Paradigm: ASP}, 2, false},
		{Sync{Paradigm: SSP, Staleness: 3}, 4, false},
		{Sync{Paradigm: SSP, Staleness: -1}, 4, true},
		{Sync{Paradigm: DSSP, Staleness: 3, Range: -2}, 4, true},
		{Sync{Paradigm: BackupBSP, Backups: 1}, 4, false},
		{Sync{Paradigm: BackupBSP, Backups: 4}, 4, true},
		{Sync{Paradigm: BoundedDelay, Staleness: 3}, 4, false},
	}
	for _, tc := range cases {
		err := tc.sync.Validate(tc.workers)
		if (err != nil) != tc.wantErr {
			t.Errorf("Validate(%+v, %d) error = %v, wantErr %v", tc.sync, tc.workers, err, tc.wantErr)
		}
		if tc.sync.Describe() == "" {
			t.Errorf("Describe(%+v) empty", tc.sync)
		}
	}
	if DefaultDSSP().Describe() != "DSSP sL=3 r=12" {
		t.Errorf("DefaultDSSP description %q", DefaultDSSP().Describe())
	}
}

func TestTrainQuickstartConverges(t *testing.T) {
	res, err := Train(TrainConfig{
		Model:     ModelSmallMLP,
		Workers:   3,
		BatchSize: 16,
		Epochs:    6,
		Sync:      DefaultDSSP(),
		Dataset:   DatasetConfig{Examples: 300, Classes: 3, ImageSize: 12, Noise: 0.4, Seed: 1},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.7 {
		t.Fatalf("final accuracy %v, want >= 0.7 on the easy synthetic task", res.FinalAccuracy)
	}
	if res.Updates == 0 || res.Duration <= 0 {
		t.Fatal("missing run statistics")
	}
	if res.Paradigm != "DSSP sL=3 r=12" {
		t.Fatalf("unexpected paradigm label %q", res.Paradigm)
	}
	if _, ok := res.TimeToAccuracy(0.5); !ok {
		t.Fatal("run should have crossed 0.5 accuracy")
	}
}

func TestTrainDefaultsAreApplied(t *testing.T) {
	res, err := Train(TrainConfig{Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("defaulted run applied no updates")
	}
}

func TestTrainRejectsInvalidConfigs(t *testing.T) {
	if _, err := Train(TrainConfig{Model: "no-such-model"}); err == nil {
		t.Error("expected error for unknown model")
	}
	if _, err := Train(TrainConfig{Sync: Sync{Paradigm: SSP, Staleness: -3}}); err == nil {
		t.Error("expected error for invalid staleness")
	}
}

func TestTrainParadigmsProduceDifferentWaitProfiles(t *testing.T) {
	base := TrainConfig{
		Model:        ModelSmallMLP,
		Workers:      3,
		BatchSize:    16,
		Epochs:       3,
		Dataset:      DatasetConfig{Examples: 192, Classes: 3, ImageSize: 10, Noise: 0.4, Seed: 3},
		WorkerDelays: []time.Duration{0, 0, 8 * time.Millisecond},
		Seed:         4,
	}
	bspCfg := base
	bspCfg.Sync = Sync{Paradigm: BSP}
	aspCfg := base
	aspCfg.Sync = Sync{Paradigm: ASP}

	bsp, err := Train(bspCfg)
	if err != nil {
		t.Fatal(err)
	}
	asp, err := Train(aspCfg)
	if err != nil {
		t.Fatal(err)
	}
	bspWait := bsp.WorkerWaitTime[0] + bsp.WorkerWaitTime[1]
	aspWait := asp.WorkerWaitTime[0] + asp.WorkerWaitTime[1]
	if bspWait <= aspWait {
		t.Fatalf("BSP fast-worker wait %v should exceed ASP %v with a slow straggler", bspWait, aspWait)
	}
}

func TestFigureFacade(t *testing.T) {
	cfg := SimulationConfig{Epochs: 10, Seed: 1, Points: 30}
	fig, err := Figure("fig3a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig3a" || len(fig.Curves) != 4 {
		t.Fatalf("unexpected figure %q with %d curves", fig.ID, len(fig.Curves))
	}
	dssp, ok := fig.Curve("DSSP s=3 r=12")
	if !ok || len(dssp.Times) != len(dssp.Accuracies) || len(dssp.Times) == 0 {
		t.Fatal("DSSP curve malformed")
	}
	if _, ok := dssp.TimeToAccuracy(0.3); !ok {
		t.Fatal("curve never crossed 0.3 accuracy")
	}
	if _, ok := fig.Curve("nope"); ok {
		t.Fatal("missing curve reported as present")
	}
	if _, err := Figure("fig99", cfg); err == nil {
		t.Fatal("expected error for unknown figure id")
	}
	if len(FigureIDs()) != 7 {
		t.Fatalf("expected 7 figure ids, got %d", len(FigureIDs()))
	}
}

func TestTableIFacade(t *testing.T) {
	rows, err := TableI(SimulationConfig{Epochs: 20, Seed: 1, Points: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Paradigm] = true
	}
	for _, want := range []string{"BSP", "ASP", "SSP s=3", "SSP s=6", "SSP s=15", "DSSP s=3 r=12"} {
		if !labels[want] {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestPredictionCurveFacade(t *testing.T) {
	waits, selected, err := PredictionCurve(time.Second, 3500*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(waits) != 9 || selected < 0 || selected > 8 {
		t.Fatalf("unexpected prediction curve %v / %d", waits, selected)
	}
}

func TestThroughputTrendsFacade(t *testing.T) {
	trends, err := ThroughputTrends(SimulationConfig{Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 3 {
		t.Fatalf("expected 3 trends, got %d", len(trends))
	}
	for _, tr := range trends {
		if len(tr.Order) != 4 {
			t.Errorf("%s: expected 4 ordered paradigms, got %v", tr.Model, tr.Order)
		}
		fastest := tr.Order[0]
		if tr.HasFullyConnected && fastest == "BSP" {
			t.Errorf("%s: BSP should not be the fastest on an FC-heavy model", tr.Model)
		}
		if !tr.HasFullyConnected && fastest != "BSP" {
			t.Errorf("%s: BSP should be the fastest on a conv-only model, got %s", tr.Model, fastest)
		}
	}
}

func TestServeAndRunWorkerOverTCP(t *testing.T) {
	dataset := DatasetConfig{Examples: 96, Classes: 2, ImageSize: 8, Noise: 0.4, Seed: 9}
	const workers = 2
	server, err := Serve(ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      workers,
		Sync:         DefaultDSSP(),
		Model:        ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	reports := make(chan *WorkerReport, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rep, err := RunWorker(WorkerConfig{
				ServerAddr: server.Addr(),
				WorkerID:   w,
				Workers:    workers,
				Model:      ModelSmallMLP,
				Dataset:    dataset,
				BatchSize:  16,
				Epochs:     3,
				Seed:       7,
				// A mixed fleet: worker 0 requests version-gated delta pulls
				// (v2 frames on the wire), worker 1 stays on full v1-style
				// pulls — both must interoperate with the same server.
				Options: Options{DeltaPull: w == 0},
			})
			if err != nil {
				errs <- err
				return
			}
			reports <- rep
		}(w)
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case rep := <-reports:
			if rep.Iterations == 0 {
				t.Fatal("worker performed no iterations")
			}
		case <-time.After(60 * time.Second):
			t.Fatal("worker timed out")
		}
	}
	select {
	case <-server.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("server never observed completion")
	}
	if server.Updates() == 0 {
		t.Fatal("server applied no updates")
	}
}

func TestServeAndRunWorkerCompressedOverTCP(t *testing.T) {
	dataset := DatasetConfig{Examples: 96, Classes: 2, ImageSize: 8, Noise: 0.4, Seed: 9}
	const workers = 2
	server, err := Serve(ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      workers,
		Sync:         DefaultDSSP(),
		Model:        ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		Options:      Options{Compression: Compression{Codec: CompressTopK, TopK: 0.25}},
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	// A worker with a conflicting explicit codec must be rejected cleanly.
	if _, err := RunWorker(WorkerConfig{
		ServerAddr: server.Addr(),
		WorkerID:   0,
		Workers:    workers,
		Model:      ModelSmallMLP,
		Dataset:    dataset,
		BatchSize:  16,
		Epochs:     1,
		Seed:       7,
		Options:    Options{Compression: Compression{Codec: CompressInt8}},
	}); err == nil {
		t.Fatal("int8 worker joined a topk server")
	}

	// One worker adopts the server's codec (default auto), one matches it
	// explicitly; both must train and the codec must show in the report.
	reports := make(chan *WorkerReport, workers)
	errs := make(chan error, workers)
	configs := []Compression{{}, {Codec: CompressTopK, TopK: 0.25}}
	for w := 0; w < workers; w++ {
		go func(w int) {
			rep, err := RunWorker(WorkerConfig{
				ServerAddr: server.Addr(),
				WorkerID:   w,
				Workers:    workers,
				Model:      ModelSmallMLP,
				Dataset:    dataset,
				BatchSize:  16,
				Epochs:     3,
				Seed:       7,
				// Shards 0 accepts the server's layout.
				Options: Options{Compression: configs[w]},
			})
			if err != nil {
				errs <- err
				return
			}
			reports <- rep
		}(w)
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case rep := <-reports:
			if rep.Codec != CompressTopK {
				t.Fatalf("worker negotiated codec %q, want %q", rep.Codec, CompressTopK)
			}
			if rep.PushedBytes <= 0 || rep.PulledBytes <= 0 {
				t.Fatalf("traffic not accounted: pushed=%d pulled=%d", rep.PushedBytes, rep.PulledBytes)
			}
			if rep.PushedBytes >= rep.PulledBytes {
				t.Fatalf("topk pushes (%d B) should be far below dense pulls (%d B)", rep.PushedBytes, rep.PulledBytes)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("worker timed out")
		}
	}
	select {
	case <-server.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("server never observed completion")
	}
	if server.Updates() == 0 {
		t.Fatal("server applied no updates")
	}
}

func TestWorkerShardExpectationMismatch(t *testing.T) {
	dataset := DatasetConfig{Examples: 64, Classes: 2, ImageSize: 8, Noise: 0.4, Seed: 3}
	server, err := Serve(ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      1,
		Sync:         Sync{Paradigm: ASP},
		Model:        ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		Options:      Options{Shards: 2},
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	if _, err := RunWorker(WorkerConfig{
		ServerAddr: server.Addr(),
		WorkerID:   0,
		Workers:    1,
		Model:      ModelSmallMLP,
		Dataset:    dataset,
		BatchSize:  16,
		Epochs:     1,
		Seed:       3,
		Options:    Options{Shards: 5}, // wrong on purpose
	}); err == nil {
		t.Fatal("worker accepted a shard-count mismatch it was told to assert")
	}
}
