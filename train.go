package dssp

import (
	"fmt"
	"time"

	"dssp/internal/compress"
	"dssp/internal/data"
	"dssp/internal/metrics"
	"dssp/internal/nn"
	"dssp/internal/optimizer"
	"dssp/internal/ps"
	"dssp/internal/trainer"
)

// Model identifies one of the built-in architectures for local training.
type Model string

// Built-in models. The paper's full-size architectures are available for the
// simulator (see Figure); the local CPU trainer offers them in reduced form
// plus two small models that train in seconds.
const (
	// ModelSmallMLP is a two-layer perceptron over flat features.
	ModelSmallMLP Model = "small-mlp"
	// ModelSmallCNN is a one-conv-layer CNN over small images.
	ModelSmallCNN Model = "small-cnn"
	// ModelAlexNetSmall is the paper's downsized AlexNet (3 conv + 2 FC) for
	// 32×32 RGB images. Training it on a CPU is slow; prefer it for short
	// demonstration runs.
	ModelAlexNetSmall Model = "alexnet-small"
	// ModelResNet8 is the smallest CIFAR-style residual network (depth 8),
	// the CPU-friendly stand-in for the paper's ResNet-50/110.
	ModelResNet8 Model = "resnet-8"
)

// DatasetConfig describes the synthetic classification dataset used by local
// training (the documented substitution for CIFAR-10/100; see DESIGN.md).
type DatasetConfig struct {
	// Examples is the number of training examples.
	Examples int
	// TestExamples is the number of held-out examples (default Examples/5).
	TestExamples int
	// Classes is the number of classes.
	Classes int
	// ImageSize is the square image size for CNN models or the feature count
	// for ModelSmallMLP.
	ImageSize int
	// Noise is the pixel noise standard deviation; larger is harder.
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

// Compression selects the gradient codec spoken on the wire between workers
// and the parameter server. Lossy codecs carry a per-worker error-feedback
// residual, so training still converges; what they buy is bandwidth — see
// the README's wire-protocol section for when to pick which.
type Compression struct {
	// Codec is CompressNone (the default), CompressFP16, CompressInt8 or
	// CompressTopK. On WorkerConfig the empty string instead means "adopt
	// whatever the server speaks" (CompressAuto).
	Codec string
	// TopK is the fraction of gradient entries the topk codec keeps per
	// tensor, in (0, 1]; 0 selects the default 0.1.
	TopK float64
	// Pull additionally compresses the weights workers pull from the server
	// (fp16 and int8 only — weights are state, not sparse updates).
	Pull bool
}

// Codec names for Compression.Codec.
const (
	// CompressNone sends full-precision float32 tensors (the default).
	CompressNone = compress.None
	// CompressAuto (workers only) adopts the server's codec at registration.
	CompressAuto = compress.Auto
	// CompressFP16 halves the wire footprint with IEEE half precision.
	CompressFP16 = compress.FP16
	// CompressInt8 quantizes to one byte per value with a per-tensor scale.
	CompressInt8 = compress.Int8
	// CompressTopK sends only the largest-magnitude gradient entries.
	CompressTopK = compress.TopK
)

// internal converts the public knob into the codec subsystem's configuration.
func (c Compression) internal() compress.Config {
	return compress.Config{Codec: c.Codec, TopK: c.TopK, Pull: c.Pull}.Normalized()
}

// String renders the configuration with its effective parameters, e.g.
// "topk(0.1)+pull".
func (c Compression) String() string { return c.internal().String() }

// TrainConfig configures a local distributed-training run.
type TrainConfig struct {
	// Model selects the architecture.
	Model Model
	// Dataset describes the synthetic dataset.
	Dataset DatasetConfig
	// Workers is the number of worker goroutines (the paper uses 4 servers).
	Workers int
	// BatchSize is the per-worker mini-batch size (paper: 128).
	BatchSize int
	// Epochs is the number of passes over each worker's shard (paper: 300).
	Epochs int
	// Sync selects the synchronization paradigm.
	Sync Sync
	// LearningRate, Momentum, WeightDecay configure SGD on the server.
	LearningRate float64
	Momentum     float64
	WeightDecay  float64
	// DecayEpochs lists epochs at which the learning rate is multiplied by
	// 0.1 (the paper uses 200 and 250 for the ResNets).
	DecayEpochs []int
	// WorkerDelays adds an artificial per-iteration delay per worker to
	// emulate heterogeneous hardware (paper §V-D) on one machine.
	WorkerDelays []time.Duration
	// Augment enables the image distortions discussed in §V-C.
	Augment bool
	// Options is the shared serving surface — store sharding, compression,
	// aggregation, guard, delta pulls, elasticity, heartbeats,
	// checkpointing. Its fields are embedded, so they read exactly as they
	// did when they were declared here (cfg.Compression, cfg.Elastic, ...).
	Options
	// Adversaries makes listed workers Byzantine for robustness experiments:
	// the worker computes honest gradients, then misbehaves as configured
	// before pushing. See Adversary for the available behaviours.
	Adversaries map[int]Adversary
	// Seed controls model initialization and batch order.
	Seed int64
}

// Checkpoint configures parameter-store snapshots: atomic files the server
// writes every Every applied updates (and on shutdown) so a restarted server
// resumes the run where it stopped.
type Checkpoint struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the checkpoint interval in applied updates; 0 (with Dir set)
	// checkpoints only on shutdown.
	Every int
}

// internal converts the public knob into the ps-layer configuration.
func (c Checkpoint) internal() ps.CheckpointConfig {
	return ps.CheckpointConfig{Dir: c.Dir, Every: c.Every}
}

// TrainResult reports the outcome of a local training run.
type TrainResult struct {
	// Paradigm is the human-readable synchronization description.
	Paradigm string
	// FinalAccuracy is the test accuracy of the final global model.
	FinalAccuracy float64
	// Accuracy is test accuracy over elapsed wall-clock time.
	Accuracy *metrics.TimeSeries
	// Updates is the number of gradient updates applied by the server.
	Updates int
	// DroppedUpdates is the number of pushed updates the policy discarded
	// (the backup-worker baseline's defining metric; 0 elsewhere).
	DroppedUpdates int
	// Duration is the wall-clock training time.
	Duration time.Duration
	// MeanStaleness and MaxStaleness summarize the staleness of applied
	// updates.
	MeanStaleness float64
	MaxStaleness  int
	// WorkerWaitTime is the total synchronization wait per worker.
	WorkerWaitTime []time.Duration
	// PushedBytes and PulledBytes approximate the gradient and weight
	// payloads all workers moved over the wire — the number gradient
	// compression shrinks.
	PushedBytes int64
	PulledBytes int64
	// GuardFlags is the per-worker anomaly-flag count and Evicted the
	// workers the guard expelled, when Options.Guard is enabled — the raw
	// material for attacker-detection rates. GuardDropped counts the pushes
	// the guard rejected.
	GuardFlags   []int
	Evicted      []int
	GuardDropped int
}

// TimeToAccuracy returns when the run first reached the target accuracy.
func (r *TrainResult) TimeToAccuracy(target float64) (time.Duration, bool) {
	return r.Accuracy.TimeToReach(target)
}

// withDefaults fills unset fields with sensible values.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Model == "" {
		c.Model = ModelSmallMLP
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Sync.Paradigm == 0 {
		c.Sync = DefaultDSSP()
	}
	d := &c.Dataset
	if d.Examples == 0 {
		d.Examples = 512
	}
	if d.Classes == 0 {
		d.Classes = 4
	}
	if d.ImageSize == 0 {
		if c.Model == ModelSmallMLP {
			d.ImageSize = 16
		} else if c.Model == ModelSmallCNN {
			d.ImageSize = 8
		} else {
			d.ImageSize = 32
		}
	}
	if d.Noise == 0 {
		d.Noise = 0.5
	}
	if d.TestExamples == 0 {
		d.TestExamples = d.Examples / 5
	}
	return c
}

// modelSpec maps the public Model name to an architecture builder.
func (c TrainConfig) modelSpec() (nn.ModelSpec, error) {
	d := c.Dataset
	switch c.Model {
	case ModelSmallMLP:
		return nn.SpecSmallMLP(d.ImageSize, 32, d.Classes), nil
	case ModelSmallCNN:
		return nn.SpecSmallCNN(d.ImageSize, d.Classes), nil
	case ModelAlexNetSmall:
		return nn.SpecDownsizedAlexNet(d.Classes), nil
	case ModelResNet8:
		return nn.SpecResNet(8, d.Classes), nil
	default:
		return nn.ModelSpec{}, fmt.Errorf("dssp: unknown model %q", c.Model)
	}
}

// buildDatasets generates the train/test split for the run.
func (c TrainConfig) buildDatasets() (*data.Dataset, *data.Dataset, error) {
	d := c.Dataset
	flat := c.Model == ModelSmallMLP
	channels := 3
	size := d.ImageSize
	if flat {
		channels = 1
	}
	if c.Model == ModelAlexNetSmall {
		size = 32
	}
	full, err := data.Synthetic(data.SyntheticConfig{
		Examples: d.Examples + d.TestExamples,
		Classes:  d.Classes,
		Channels: channels,
		Size:     size,
		Noise:    d.Noise,
		Flat:     flat,
		Seed:     d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	trainIdx := make([]int, d.Examples)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, d.TestExamples)
	for i := range testIdx {
		testIdx[i] = d.Examples + i
	}
	return full.Subset(trainIdx), full.Subset(testIdx), nil
}

// Train runs data-parallel training on an in-process cluster: Workers
// goroutines each train a model replica on their shard of a synthetic
// dataset, exchanging gradients and weights with a parameter server governed
// by the configured synchronization paradigm.
func Train(cfg TrainConfig) (*TrainResult, error) {
	cfg = cfg.withDefaults()
	spec, err := cfg.modelSpec()
	if err != nil {
		return nil, err
	}
	if err := cfg.Sync.Validate(cfg.Workers); err != nil {
		return nil, err
	}
	train, test, err := cfg.buildDatasets()
	if err != nil {
		return nil, err
	}

	var schedule *optimizer.StepSchedule
	if len(cfg.DecayEpochs) > 0 {
		schedule = optimizer.NewStepSchedule(cfg.LearningRate, 0.1, cfg.DecayEpochs...)
	}
	var augment data.Augmenter
	if cfg.Augment {
		augment = data.Pipeline{
			data.HorizontalFlip{P: 0.5},
			data.GaussianNoise{StdDev: 0.05},
		}
	}

	res, err := trainer.Run(trainer.Config{
		Model:             spec,
		Train:             train,
		Test:              test,
		Workers:           cfg.Workers,
		BatchSize:         cfg.BatchSize,
		Epochs:            cfg.Epochs,
		Policy:            cfg.Sync.policyConfig(),
		LearningRate:      cfg.LearningRate,
		Momentum:          cfg.Momentum,
		WeightDecay:       cfg.WeightDecay,
		Schedule:          schedule,
		WorkerDelay:       cfg.WorkerDelays,
		Augment:           augment,
		Shards:            cfg.Shards,
		Options:           cfg.Options.serverOptions(),
		DeltaPull:         cfg.DeltaPull,
		HeartbeatInterval: cfg.HeartbeatInterval,
		Adversaries:       internalAdversaries(cfg.Adversaries),
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := &TrainResult{
		Paradigm:       res.Paradigm,
		FinalAccuracy:  res.FinalAccuracy,
		Accuracy:       res.Accuracy,
		Updates:        res.Updates,
		DroppedUpdates: res.Dropped,
		Duration:       res.Duration,
		MeanStaleness:  res.Staleness.Mean(),
		MaxStaleness:   res.Staleness.Max(),
		WorkerWaitTime: make([]time.Duration, cfg.Workers),
		PushedBytes:    res.PushedBytes,
		PulledBytes:    res.PulledBytes,
		GuardFlags:     res.Guard.Flags,
		Evicted:        res.Guard.Evicted,
		GuardDropped:   res.Guard.DroppedPushes,
	}
	for w := 0; w < cfg.Workers; w++ {
		out.WorkerWaitTime[w] = res.Waits.Total(w)
	}
	return out, nil
}
