package dssp_test

import (
	"sync"
	"testing"
	"time"

	"dssp"
	"dssp/internal/cluster/clustertest"
)

// elasticServerConfig is a tiny DSSP cluster over real TCP.
func elasticServerConfig(addr, ckptDir string, workers int) dssp.ServerConfig {
	return dssp.ServerConfig{
		Addr:         addr,
		Workers:      workers,
		Sync:         dssp.Sync{Paradigm: dssp.DSSP, Staleness: 2, Range: 4},
		Model:        dssp.ModelSmallMLP,
		Dataset:      dssp.DatasetConfig{Examples: 240, Classes: 3, ImageSize: 12, Noise: 0.3, Seed: 3},
		LearningRate: 0.1,
		Options: dssp.Options{
			Elastic:          true,
			HeartbeatTimeout: 2 * time.Second,
			Checkpoint:       dssp.Checkpoint{Dir: ckptDir, Every: 10},
		},
		Seed: 3,
	}
}

func elasticWorkerConfig(addr string, id, workers int) dssp.WorkerConfig {
	return dssp.WorkerConfig{
		ServerAddr:       addr,
		WorkerID:         id,
		Workers:          workers,
		Model:            dssp.ModelSmallMLP,
		Dataset:          dssp.DatasetConfig{Examples: 240, Classes: 3, ImageSize: 12, Noise: 0.3, Seed: 3},
		BatchSize:        12,
		Epochs:           3,
		Seed:             3,
		Reconnect:        true,
		ReconnectTimeout: 30 * time.Second,
		Options:          dssp.Options{HeartbeatInterval: 200 * time.Millisecond},
	}
}

// TestTCPWorkerCrashRejoinAndServerRestart is the end-to-end elasticity
// test over real TCP: one worker crashes via fault injection and is
// restarted (rejoining mid-run), and the server itself is killed and
// brought back from its checkpoint while the surviving workers ride through
// on their reconnect loops.
func TestTCPWorkerCrashRejoinAndServerRestart(t *testing.T) {
	const workers = 2
	addr := clustertest.FreePort(t)
	ckptDir := t.TempDir()

	server, err := dssp.Serve(elasticServerConfig(addr, ckptDir, workers))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	// Worker 0 runs the whole course with a small per-iteration delay so the
	// run is still in flight when we bounce the server.
	var wg sync.WaitGroup
	var w0report *dssp.WorkerReport
	var w0err error
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfg := elasticWorkerConfig(addr, 0, workers)
		cfg.Delay = 25 * time.Millisecond
		w0report, w0err = dssp.RunWorker(cfg)
	}()

	// Worker 1 crashes a few iterations in...
	crashCfg := elasticWorkerConfig(addr, 1, workers)
	crashCfg.FailAfter = 5
	report, err := dssp.RunWorker(crashCfg)
	if err != nil {
		t.Fatalf("crashing worker: %v", err)
	}
	if !report.Crashed {
		t.Fatal("FailAfter did not crash the worker")
	}

	// ...and is restarted, rejoining the same run.
	var w1report *dssp.WorkerReport
	var w1err error
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfg := elasticWorkerConfig(addr, 1, workers)
		cfg.Delay = 20 * time.Millisecond
		w1report, w1err = dssp.RunWorker(cfg)
	}()

	// Give the run a moment, then kill the server and restore it from its
	// checkpoint on the same address. The workers' reconnect loops must
	// carry them across the outage.
	time.Sleep(300 * time.Millisecond)
	versionBefore := server.Version()
	server.Stop()
	server, err = dssp.Serve(elasticServerConfig(addr, ckptDir, workers))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer server.Stop()
	if !server.Restored() {
		t.Fatal("restarted server did not restore the checkpoint")
	}
	if server.Version() == 0 || server.Version() > versionBefore {
		t.Fatalf("restored version %d, expected in (0, %d]", server.Version(), versionBefore)
	}

	wg.Wait()
	if w0err != nil {
		t.Fatalf("worker 0: %v", w0err)
	}
	if w1err != nil {
		t.Fatalf("worker 1 (rejoined): %v", w1err)
	}
	if w0report.Reconnects == 0 {
		t.Error("worker 0 never reconnected across the server restart")
	}
	if w0report.Iterations == 0 || w1report.Iterations == 0 {
		t.Errorf("iterations: w0=%d w1=%d", w0report.Iterations, w1report.Iterations)
	}

	select {
	case <-server.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("server never completed after workers finished")
	}
	if acc, err := server.Evaluate(); err != nil {
		t.Errorf("evaluate: %v", err)
	} else if acc < 0.5 {
		t.Errorf("final accuracy %.3f after crash + restart never converged", acc)
	}
}

// TestReconnectWorkerFailsFastOnWireMismatch pins that a Reconnect worker
// treats a wire-format mismatch as permanent: the error surfaces in well
// under the reconnect budget instead of being redialed for all of it.
func TestReconnectWorkerFailsFastOnWireMismatch(t *testing.T) {
	server, err := dssp.Serve(dssp.ServerConfig{
		Addr:    "127.0.0.1:0",
		Wire:    dssp.WireGob,
		Workers: 1,
		Sync:    dssp.Sync{Paradigm: dssp.ASP},
		Dataset: dssp.DatasetConfig{Examples: 32, Classes: 2, ImageSize: 8, Seed: 1},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Stop()

	start := time.Now()
	_, err = dssp.RunWorker(dssp.WorkerConfig{
		ServerAddr:       server.Addr(),
		Wire:             dssp.WireBinary,
		WorkerID:         0,
		Workers:          1,
		Dataset:          dssp.DatasetConfig{Examples: 32, Classes: 2, ImageSize: 8, Seed: 1},
		BatchSize:        8,
		Epochs:           1,
		Seed:             1,
		Reconnect:        true,
		ReconnectTimeout: 30 * time.Second,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("binary worker registered against a gob server")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("wire mismatch took %v to surface under Reconnect; must fail fast, not retry", elapsed)
	}
}
