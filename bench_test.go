package dssp

// This file holds one benchmark per table and figure of the paper's
// evaluation (Section V), plus benchmarks for the protocol-level claims.
// Each benchmark regenerates the corresponding experiment on the cluster
// simulator (or, where feasible, on the real CPU training stack) and reports
// the headline quantities as custom benchmark metrics so that
// `go test -bench=. -benchmem` prints the reproduced numbers alongside the
// timing. EXPERIMENTS.md records a full paper-versus-measured comparison.

import (
	"testing"
	"time"

	"dssp/internal/core"
	"dssp/internal/simulate"
)

// benchSimCfg keeps the simulated runs short enough for benchmarking while
// preserving the curve shapes (they are scale-invariant in epoch count).
func benchSimCfg() SimulationConfig {
	return SimulationConfig{Epochs: 60, Seed: 1, Points: 60}
}

// reportFigure attaches per-curve metrics to the benchmark output.
func reportFigure(b *testing.B, fig *FigureResult, target float64) {
	b.Helper()
	for _, c := range fig.Curves {
		name := sanitizeMetric(c.Label)
		b.ReportMetric(c.FinalAccuracy, name+"_final_acc")
		if d, ok := c.TimeToAccuracy(target); ok {
			b.ReportMetric(d.Seconds(), name+"_s_to_target")
		}
	}
}

// sanitizeMetric converts a curve label into a metric-name-friendly form.
func sanitizeMetric(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFigure2PredictionModule regenerates Figure 2: the synchronization
// controller's predicted waiting time per candidate r and the r* it selects.
func BenchmarkFigure2PredictionModule(b *testing.B) {
	var selected int
	for i := 0; i < b.N; i++ {
		var err error
		_, selected, err = PredictionCurve(time.Second, 3500*time.Millisecond, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(selected), "r_star")
}

// BenchmarkFigure3aAlexNetAllParadigms regenerates Figure 3a: BSP, ASP, DSSP
// and averaged SSP training the downsized AlexNet on CIFAR-10 over the
// homogeneous cluster.
func BenchmarkFigure3aAlexNetAllParadigms(b *testing.B) {
	var fig *FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = Figure("fig3a", benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig, 0.55)
}

// BenchmarkFigure3bAlexNetSSPSweep regenerates Figure 3b: DSSP against each
// SSP threshold from 3 to 15 on the downsized AlexNet.
func BenchmarkFigure3bAlexNetSSPSweep(b *testing.B) {
	var fig *FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = Figure("fig3b", benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	dssp, _ := fig.Curve("DSSP s=3 r=12")
	beaten := 0
	for _, c := range fig.Curves {
		if c.Label != dssp.Label && dssp.FinalAccuracy >= c.FinalAccuracy {
			beaten++
		}
	}
	b.ReportMetric(dssp.FinalAccuracy, "DSSP_final_acc")
	b.ReportMetric(float64(beaten), "SSP_curves_matched_or_beaten")
}

// BenchmarkFigure3cResNet50AllParadigms regenerates Figure 3c.
func BenchmarkFigure3cResNet50AllParadigms(b *testing.B) {
	var fig *FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = Figure("fig3c", benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig, 0.60)
}

// BenchmarkFigure3dResNet50SSPSweep regenerates Figure 3d.
func BenchmarkFigure3dResNet50SSPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure("fig3d", benchSimCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3eResNet110AllParadigms regenerates Figure 3e.
func BenchmarkFigure3eResNet110AllParadigms(b *testing.B) {
	var fig *FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = Figure("fig3e", benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig, 0.62)
}

// BenchmarkFigure3fResNet110SSPSweep regenerates Figure 3f.
func BenchmarkFigure3fResNet110SSPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure("fig3f", benchSimCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Heterogeneous regenerates Figure 4: ResNet-110 on the mixed
// GTX1080Ti + GTX1060 cluster.
func BenchmarkFigure4Heterogeneous(b *testing.B) {
	var fig *FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = Figure("fig4", benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig, 0.60)
}

// BenchmarkTable1TimeToAccuracy regenerates Table I: the time each paradigm
// needs to reach 0.67 and 0.68 test accuracy on the heterogeneous cluster.
func BenchmarkTable1TimeToAccuracy(b *testing.B) {
	var rows []TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = TableI(benchSimCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Reached067 {
			b.ReportMetric(r.To067.Seconds(), sanitizeMetric(r.Paradigm)+"_s_to_0.67")
		}
	}
}

// BenchmarkSectionVCThroughputTrends regenerates the §V-C analysis: the
// completion-time ordering of the paradigms flips between the FC-heavy
// AlexNet and the conv-only ResNets.
func BenchmarkSectionVCThroughputTrends(b *testing.B) {
	var trends []ThroughputTrend
	for i := 0; i < b.N; i++ {
		var err error
		trends, err = ThroughputTrends(SimulationConfig{Epochs: 30, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tr := range trends {
		b.ReportMetric(tr.FinishTimes["BSP"].Seconds(), sanitizeMetric(tr.Model)+"_BSP_s")
		b.ReportMetric(tr.FinishTimes["ASP"].Seconds(), sanitizeMetric(tr.Model)+"_ASP_s")
	}
}

// BenchmarkTheoremRegretBound exercises the Theorem 1/2 regret bounds through
// real distributed SGD on a convex objective: it measures how the empirical
// time-to-accuracy of DSSP compares with SSP at the lower bound, the
// practical consequence of the shared O(√T) bound.
func BenchmarkTheoremRegretBound(b *testing.B) {
	var dsspAcc, sspAcc float64
	for i := 0; i < b.N; i++ {
		cfg := TrainConfig{
			Model:     ModelSmallMLP,
			Workers:   3,
			BatchSize: 16,
			Epochs:    4,
			Dataset:   DatasetConfig{Examples: 192, Classes: 3, ImageSize: 12, Noise: 0.4, Seed: 5},
			Seed:      5,
		}
		cfg.Sync = DefaultDSSP()
		dsspRes, err := Train(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Sync = Sync{Paradigm: SSP, Staleness: 3}
		sspRes, err := Train(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dsspAcc, sspAcc = dsspRes.FinalAccuracy, sspRes.FinalAccuracy
	}
	b.ReportMetric(dsspAcc, "DSSP_final_acc")
	b.ReportMetric(sspAcc, "SSP3_final_acc")
}

// BenchmarkRealTrainingSmallCNN measures end-to-end distributed training of
// the small CNN through the real parameter server under DSSP (the protocol
// sanity experiment from DESIGN.md).
func BenchmarkRealTrainingSmallCNN(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := Train(TrainConfig{
			Model:        ModelSmallCNN,
			Workers:      4,
			BatchSize:    16,
			Epochs:       3,
			Sync:         DefaultDSSP(),
			LearningRate: 0.05,
			Momentum:     0.9,
			Dataset:      DatasetConfig{Examples: 256, Classes: 4, ImageSize: 8, Noise: 0.5, Seed: 3},
			Seed:         3,
		})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.FinalAccuracy
	}
	b.ReportMetric(acc, "final_acc")
}

// BenchmarkAblationDSSPBoundEnforcement is the ablation for the design choice
// documented in DESIGN.md §5 and EXPERIMENTS.md (Table I): DSSP's default
// listing-faithful mode versus the strict Theorem-2 mode, against ASP and
// SSP(15), on the heterogeneous cluster. The metric of interest is the time
// to reach 0.60 accuracy — the default mode tracks ASP, the enforced mode
// tracks SSP at the upper threshold.
func BenchmarkAblationDSSPBoundEnforcement(b *testing.B) {
	modes := map[string]core.PolicyConfig{
		"default":  {Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12},
		"enforced": {Paradigm: core.ParadigmDSSP, Staleness: 3, Range: 12, EnforceBound: true},
		"ssp15":    {Paradigm: core.ParadigmSSP, Staleness: 15},
		"asp":      {Paradigm: core.ParadigmASP},
	}
	const epochs = 60
	cluster := simulate.HeterogeneousCluster()
	iters := simulate.PaperEpochIterations(epochs, cluster.NumWorkers())
	for name, policy := range modes {
		policy := policy
		b.Run(name, func(b *testing.B) {
			var reached float64
			for i := 0; i < b.N; i++ {
				run, err := simulate.Run(simulate.RunConfig{
					Model:               simulate.ModelResNet110,
					Cluster:             cluster,
					Policy:              policy,
					IterationsPerWorker: iters,
					Seed:                1,
				})
				if err != nil {
					b.Fatal(err)
				}
				curve := simulate.AccuracyCurve(simulate.ModelResNet110.Convergence, run,
					iters*cluster.NumWorkers(), 80)
				if d, ok := curve.TimeToReach(0.60); ok {
					reached = d.Seconds()
				}
			}
			b.ReportMetric(reached, "s_to_0.60")
		})
	}
}

// BenchmarkParadigmComparisonRealTraining compares the four paradigms on the
// real CPU training stack with one slow worker, the single-machine analogue
// of the paper's heterogeneous experiment.
func BenchmarkParadigmComparisonRealTraining(b *testing.B) {
	paradigms := map[string]Sync{
		"BSP":  {Paradigm: BSP},
		"ASP":  {Paradigm: ASP},
		"SSP3": {Paradigm: SSP, Staleness: 3},
		"DSSP": DefaultDSSP(),
	}
	for name, sync := range paradigms {
		sync := sync
		b.Run(name, func(b *testing.B) {
			var res *TrainResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Train(TrainConfig{
					Model:        ModelSmallMLP,
					Workers:      3,
					BatchSize:    16,
					Epochs:       4,
					Sync:         sync,
					Dataset:      DatasetConfig{Examples: 192, Classes: 3, ImageSize: 12, Noise: 0.4, Seed: 9},
					WorkerDelays: []time.Duration{0, 0, 2 * time.Millisecond},
					Seed:         9,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.FinalAccuracy, "final_acc")
			b.ReportMetric(res.WorkerWaitTime[0].Seconds(), "fast_worker_wait_s")
		})
	}
}
