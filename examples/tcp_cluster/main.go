// TCP cluster: run a real parameter server and two worker processes' worth of
// training over loopback TCP inside one program. The same Serve / RunWorker
// API is what cmd/psserver and cmd/psworker use across machines.
//
//	go run ./examples/tcp_cluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"dssp"
)

func main() {
	const workers = 2
	dataset := dssp.DatasetConfig{
		Examples:  256,
		Classes:   3,
		ImageSize: 12,
		Noise:     0.5,
		Seed:      11,
	}

	server, err := dssp.Serve(dssp.ServerConfig{
		Addr:         "127.0.0.1:0",
		Workers:      workers,
		Sync:         dssp.DefaultDSSP(),
		Model:        dssp.ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		// Four store shards: pulls stream the weights as four chunks, each
		// sent as soon as its shard is read (0 would pick one per CPU).
		Options: dssp.Options{Shards: 4},
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Stop()
	fmt.Printf("parameter server listening on %s\n", server.Addr())

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Worker 1 is slowed down to emulate a weaker GPU; DSSP lets
			// worker 0 keep running instead of stalling at a fixed threshold.
			var delay time.Duration
			if w == 1 {
				delay = 3 * time.Millisecond
			}
			report, err := dssp.RunWorker(dssp.WorkerConfig{
				ServerAddr: server.Addr(),
				WorkerID:   w,
				Workers:    workers,
				Model:      dssp.ModelSmallMLP,
				Dataset:    dataset,
				BatchSize:  16,
				Epochs:     5,
				Seed:       11,
				Delay:      delay,
			})
			if err != nil {
				log.Printf("worker %d failed: %v", w, err)
				return
			}
			fmt.Printf("worker %d: %d iterations in %s (final loss %.4f)\n",
				w, report.Iterations, report.Duration.Round(time.Millisecond), report.FinalLoss)
		}(w)
	}
	wg.Wait()

	select {
	case <-server.Done():
		fmt.Printf("server applied %d updates; training complete\n", server.Updates())
	case <-time.After(30 * time.Second):
		log.Fatal("timed out waiting for the server to observe completion")
	}
}
