// Heterogeneous cluster study: regenerate the paper's §V-D experiment
// (Figure 4 and Table I) on the cluster simulator — ResNet-110 trained on a
// mixed GTX1080Ti + GTX1060 cluster under BSP, ASP, SSP and DSSP — and print
// the time each paradigm needs to reach target accuracies.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"dssp"
)

func main() {
	cfg := dssp.SimulationConfig{
		// 60 epochs keep the example fast; use 300 for the paper's setting.
		Epochs: 60,
		Seed:   1,
		Points: 80,
	}

	fig, err := dssp.Figure("fig4", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.Title)
	fmt.Printf("\n%-16s %-12s %-12s %-12s %-12s\n", "paradigm", "final acc", "to 0.55", "to 0.60", "to 0.65")
	for _, curve := range fig.Curves {
		fmt.Printf("%-16s %-12.4f %-12s %-12s %-12s\n",
			curve.Label, curve.FinalAccuracy,
			formatTarget(curve, 0.55), formatTarget(curve, 0.60), formatTarget(curve, 0.65))
	}

	rows, err := dssp.TableI(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable I (time to reach 0.67 / 0.68 accuracy):\n")
	for _, r := range rows {
		to67, to68 := "-", "-"
		if r.Reached067 {
			to67 = r.To067.Round(time.Second).String()
		}
		if r.Reached068 {
			to68 = r.To068.Round(time.Second).String()
		}
		fmt.Printf("  %-16s %-12s %-12s\n", r.Paradigm, to67, to68)
	}

	fmt.Println("\nThe shape to look for (paper Table I): DSSP tracks ASP and reaches the")
	fmt.Println("targets far earlier than any fixed-threshold SSP or BSP, because its")
	fmt.Println("controller keeps the fast GPU running instead of stalling it.")
}

func formatTarget(c dssp.Curve, target float64) string {
	if d, ok := c.TimeToAccuracy(target); ok {
		return d.Round(time.Second).String()
	}
	return "-"
}
