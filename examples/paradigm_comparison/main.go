// Paradigm comparison: train the same model on the same data under BSP, ASP,
// SSP and DSSP with one artificially slowed worker (emulating the paper's
// heterogeneous cluster on a single machine), then compare accuracy, wall-
// clock time and per-worker waiting time.
//
//	go run ./examples/paradigm_comparison
package main

import (
	"fmt"
	"log"
	"time"

	"dssp"
)

func main() {
	paradigms := []dssp.Sync{
		{Paradigm: dssp.BSP},
		{Paradigm: dssp.ASP},
		{Paradigm: dssp.SSP, Staleness: 3},
		dssp.DefaultDSSP(),
	}

	fmt.Printf("%-16s %-10s %-10s %-12s %-14s %-14s\n",
		"paradigm", "accuracy", "time", "to 0.70 acc", "fast-worker", "slow-worker")
	fmt.Printf("%-16s %-10s %-10s %-12s %-14s %-14s\n",
		"", "", "", "", "wait", "wait")

	for _, sync := range paradigms {
		result, err := dssp.Train(dssp.TrainConfig{
			Model:        dssp.ModelSmallMLP,
			Workers:      3,
			BatchSize:    16,
			Epochs:       8,
			Sync:         sync,
			LearningRate: 0.1,
			Dataset: dssp.DatasetConfig{
				Examples:  384,
				Classes:   4,
				ImageSize: 16,
				Noise:     0.6,
				Seed:      7,
			},
			// Worker 2 is ~an order of magnitude slower per iteration, like
			// the GTX1060 next to the GTX1080Ti in the paper's §V-D cluster.
			WorkerDelays: []time.Duration{0, 0, 5 * time.Millisecond},
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		to70 := "-"
		if d, ok := result.TimeToAccuracy(0.70); ok {
			to70 = d.Round(time.Millisecond).String()
		}
		fmt.Printf("%-16s %-10.3f %-10s %-12s %-14s %-14s\n",
			result.Paradigm,
			result.FinalAccuracy,
			result.Duration.Round(time.Millisecond),
			to70,
			result.WorkerWaitTime[0].Round(time.Millisecond),
			result.WorkerWaitTime[2].Round(time.Millisecond),
		)
	}
}
