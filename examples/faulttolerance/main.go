// Fault tolerance end to end over real TCP: a DSSP cluster survives a
// worker crash, the worker's restart and rejoin, and a parameter-server
// kill + checkpoint-restore — and still converges.
//
// The timeline:
//
//  1. An elastic parameter server starts with checkpointing enabled.
//
//  2. Three workers train; worker 2 is killed a third of the way in (the
//     connection drops with no goodbye, exactly like a SIGKILL).
//     Without the membership layer, DSSP would wait on its frozen clock
//     forever; instead the dead session is deregistered, the policy drops
//     the worker from staleness accounting, and workers 0 and 1 keep going.
//
//  3. Worker 2 is restarted and rejoins the same run mid-flight.
//
//  4. The server itself is killed and a new one starts from the latest
//     checkpoint — same address, restored weights/optimizer/version. The
//     workers' -reconnect loops redial, rejoin, and training resumes.
//
//  5. Everyone finishes; the final model is evaluated on held-out data.
//
//     go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"dssp"
)

const workers = 3

var dataset = dssp.DatasetConfig{
	Examples:  384,
	Classes:   3,
	ImageSize: 12,
	Noise:     0.4,
	Seed:      7,
}

func serverConfig(addr, ckptDir string) dssp.ServerConfig {
	return dssp.ServerConfig{
		Addr:         addr,
		Workers:      workers,
		Sync:         dssp.DefaultDSSP(),
		Model:        dssp.ModelSmallMLP,
		Dataset:      dataset,
		LearningRate: 0.1,
		Options: dssp.Options{
			Elastic: true,
			// A short lease so a hung worker is evicted quickly in the demo.
			HeartbeatTimeout: 2 * time.Second,
			Checkpoint:       dssp.Checkpoint{Dir: ckptDir, Every: 20},
		},
		Seed: 7,
	}
}

func workerConfig(addr string, id int) dssp.WorkerConfig {
	return dssp.WorkerConfig{
		ServerAddr:       addr,
		WorkerID:         id,
		Workers:          workers,
		Model:            dssp.ModelSmallMLP,
		Dataset:          dataset,
		BatchSize:        16,
		Epochs:           10,
		Seed:             7,
		Delay:            25 * time.Millisecond,
		Reconnect:        true,
		ReconnectTimeout: 30 * time.Second,
		Options:          dssp.Options{HeartbeatInterval: 250 * time.Millisecond},
	}
}

func main() {
	// Reserve a fixed port so the restarted server is reachable at the same
	// address the workers keep dialing.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ckptDir, err := os.MkdirTemp("", "dssp-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)

	server, err := dssp.Serve(serverConfig(addr, ckptDir))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elastic DSSP server on %s, checkpoints every 20 updates in %s\n", addr, ckptDir)

	var wg sync.WaitGroup
	reports := make([]*dssp.WorkerReport, workers)

	// Workers 0 and 1 run the whole course.
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r, err := dssp.RunWorker(workerConfig(addr, id))
			if err != nil {
				log.Fatalf("worker %d: %v", id, err)
			}
			reports[id] = r
		}(id)
	}

	// Worker 2 is killed a third of the way through its run...
	crash := workerConfig(addr, 2)
	crash.FailAfter = 30
	r, err := dssp.RunWorker(crash)
	if err != nil {
		log.Fatalf("worker 2 (doomed): %v", err)
	}
	fmt.Printf("worker 2 KILLED after %d iterations — survivors keep training (no deadlock)\n", r.Iterations)

	// ...and restarted half a second later, rejoining the same run.
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("worker 2 restarting (server saw %d departures so far)\n", server.Departures())
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := dssp.RunWorker(workerConfig(addr, 2))
		if err != nil {
			log.Fatalf("worker 2 (restarted): %v", err)
		}
		reports[2] = r
	}()

	// Meanwhile, kill the server mid-run and bring up a fresh one from the
	// checkpoint. The workers' reconnect loops carry them across.
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("server KILLED at version %d; restarting from checkpoint...\n", server.Version())
	server.Stop()
	server, err = dssp.Serve(serverConfig(addr, ckptDir))
	if err != nil {
		log.Fatalf("server restart: %v", err)
	}
	if !server.Restored() {
		log.Fatal("restarted server found no checkpoint")
	}
	fmt.Printf("server restored at version %d — training resumes\n", server.Version())

	wg.Wait()
	select {
	case <-server.Done():
	case <-time.After(10 * time.Second):
		// All workers have returned, so nothing is training; don't let the
		// demo hang if the completion edge was missed.
	}

	fmt.Println()
	for id, r := range reports {
		fmt.Printf("worker %d: %d iterations, final loss %.4f, %d reconnects\n",
			id, r.Iterations, r.FinalLoss, r.Reconnects)
	}
	fmt.Printf("server: %d updates applied, %d departures, %d rejoins\n",
		server.Updates(), server.Departures(), server.Rejoins())
	acc, err := server.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final accuracy on held-out data: %.3f — DSSP converged through a worker kill, "+
		"a rejoin, and a server restart\n", acc)
	server.Stop()
}
