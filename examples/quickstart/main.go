// Quickstart: train a small model with DSSP on an in-process cluster of four
// workers and print how accuracy evolved over time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dssp"
)

func main() {
	result, err := dssp.Train(dssp.TrainConfig{
		Model:     dssp.ModelSmallCNN,
		Workers:   4,
		BatchSize: 16,
		Epochs:    6,
		// The paper's DSSP setting: lower bound sL=3 with a range of 12 extra
		// iterations, i.e. effective thresholds in [3, 15].
		Sync:         dssp.DefaultDSSP(),
		LearningRate: 0.05,
		Momentum:     0.9,
		Dataset: dssp.DatasetConfig{
			Examples:  512,
			Classes:   4,
			ImageSize: 8,
			Noise:     0.5,
			Seed:      42,
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("paradigm:        %s\n", result.Paradigm)
	fmt.Printf("updates applied: %d\n", result.Updates)
	fmt.Printf("training time:   %s\n", result.Duration.Round(time.Millisecond))
	fmt.Printf("final accuracy:  %.3f\n", result.FinalAccuracy)
	fmt.Printf("mean staleness:  %.2f (max %d)\n", result.MeanStaleness, result.MaxStaleness)

	fmt.Println("\naccuracy over time:")
	for _, p := range result.Accuracy.Downsample(10).Points() {
		fmt.Printf("  %8s  %.3f\n", p.Elapsed.Round(time.Millisecond), p.Value)
	}
}
