// Bandwidth vs accuracy: train the same model under DSSP with each gradient
// codec and compare what every option costs on the wire against what it
// gives up in accuracy. On a bandwidth-constrained cluster the bytes column
// is the iteration-time budget; with error feedback the accuracy column
// barely moves, which is the whole point of the compression subsystem.
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"

	"dssp"
)

func main() {
	codecs := []dssp.Compression{
		{Codec: dssp.CompressNone},
		{Codec: dssp.CompressFP16},
		{Codec: dssp.CompressInt8},
		{Codec: dssp.CompressTopK, TopK: 0.1},
		{Codec: dssp.CompressTopK, TopK: 0.01},
		// Fully compressed wire: int8 gradients up, int8 weights down.
		{Codec: dssp.CompressInt8, Pull: true},
	}

	fmt.Println("codec          pushed      pulled      final-acc  updates  duration")
	var basePushed int64
	for _, codec := range codecs {
		result, err := dssp.Train(dssp.TrainConfig{
			Model:        dssp.ModelSmallMLP,
			Workers:      4,
			BatchSize:    16,
			Epochs:       6,
			Sync:         dssp.DefaultDSSP(),
			LearningRate: 0.1,
			Options:      dssp.Options{Compression: codec},
			Dataset: dssp.DatasetConfig{
				Examples:  512,
				Classes:   4,
				ImageSize: 16,
				Noise:     0.5,
				Seed:      42,
			},
			Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		if basePushed == 0 {
			basePushed = result.PushedBytes
		}
		fmt.Printf("%-13s  %-10s  %-10s  %8.1f%%  %7d  %v\n",
			codec, mib(result.PushedBytes), mib(result.PulledBytes),
			100*result.FinalAccuracy, result.Updates, result.Duration.Round(1e6))
		if codec.Codec != dssp.CompressNone {
			fmt.Printf("               (%.1fx fewer pushed bytes than uncompressed)\n",
				float64(basePushed)/float64(result.PushedBytes))
		}
	}
}

// mib renders a byte count in mebibytes.
func mib(n int64) string {
	return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
}
