package dssp

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/nn"
	"dssp/internal/obs"
	"dssp/internal/optimizer"
	"dssp/internal/ps"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// Cluster roles for ClusterOptions.Role (the -role flag on cmd/psserver).
// The empty string is a classic standalone server.
const (
	// RoleCoordinator owns the policy layer of a server group: it serves the
	// cluster map, accepts metadata-only pushes, and runs the real
	// BSP/SSP/DSSP staleness decisions. It never carries model weights.
	RoleCoordinator = "coordinator"
	// RoleData owns a contiguous range of the global store shards: it runs
	// its own applier pipeline, COW store and delta-pull cache for that
	// slice, and announces itself to the coordinator so workers can route
	// fragments to it.
	RoleData = "data"
	// RoleBackup stands by for one data server: it replicates the primary's
	// published weights over a read-only delta-pull stream and requests
	// promotion from the coordinator when the primary stays unreachable past
	// the replication grace.
	RoleBackup = "backup"
)

// ClusterOptions configures a psserver's place in a server group
// (ServerConfig.Cluster). The zero value is a standalone server. Every
// member of one group must be started with the same model, dataset, seed,
// Servers and GlobalShards values — the shard layout is derived
// deterministically from them, which is what lets servers that have never
// spoken to each other agree on byte-exact shard boundaries.
type ClusterOptions struct {
	// Role is RoleCoordinator, RoleData, RoleBackup, or "" for standalone.
	Role string
	// Coordinator is the coordinator's address; required for data and
	// backup roles (the -peers flag).
	Coordinator string
	// Servers is the number of data servers in the group (all roles).
	Servers int
	// Index is this server's slot in [0, Servers) — which shard range of
	// the group layout it owns. Data and backup roles only. Alternatively
	// set ShardLo/ShardHi explicitly (the -shard-range flag); they must
	// match one of the layout's assignments.
	Index int
	// ShardLo and ShardHi, when ShardHi > 0, select the owned shard range
	// [ShardLo, ShardHi) explicitly instead of via Index. The range must be
	// exactly one of the group layout's assignments.
	ShardLo, ShardHi int
	// GlobalShards is the group-wide store shard count; 0 picks the
	// deterministic default (two per data server).
	GlobalShards int
	// Advertise is the address put in the cluster map for this server —
	// what workers dial. Defaults to the listener's address, which is only
	// right when it is reachable as-is (no ":7070"-style wildcard binds
	// behind NAT).
	Advertise string
	// Primary is the data server this backup replicates from (backup role).
	Primary string
	// ReplicateEvery is the backup's replication poll cadence (default 25ms).
	ReplicateEvery time.Duration
	// ReplicateGrace is how long the primary may stay unreachable before the
	// backup declares it dead and requests promotion (default 2s).
	ReplicateGrace time.Duration
}

// validate checks role-specific requirements.
func (c ClusterOptions) validate() error {
	switch c.Role {
	case "":
		return nil
	case RoleCoordinator:
		if c.Servers < 1 {
			return fmt.Errorf("dssp: coordinator needs the group's data-server count (Servers)")
		}
		return nil
	case RoleData, RoleBackup:
		if c.Coordinator == "" {
			return fmt.Errorf("dssp: %s server needs the coordinator's address", c.Role)
		}
		if c.Servers < 1 {
			return fmt.Errorf("dssp: %s server needs the group's data-server count (Servers)", c.Role)
		}
		if c.ShardHi == 0 && (c.Index < 0 || c.Index >= c.Servers) {
			return fmt.Errorf("dssp: %s server index %d outside [0, %d)", c.Role, c.Index, c.Servers)
		}
		if c.Role == RoleBackup && c.Primary == "" {
			return fmt.Errorf("dssp: backup server needs its primary's address")
		}
		return nil
	default:
		return fmt.Errorf("dssp: unknown cluster role %q (want %q, %q or %q)",
			c.Role, RoleCoordinator, RoleData, RoleBackup)
	}
}

// ParseShardRange parses a "lo:hi" shard-range flag into its bounds.
func ParseShardRange(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if ok {
		if lo, err = strconv.Atoi(a); err == nil {
			hi, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil || lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("dssp: shard range %q is not lo:hi with 0 <= lo < hi", s)
	}
	return lo, hi, nil
}

// assignment resolves which slice of the group layout this server owns.
func (c ClusterOptions) assignment(layout []ps.ShardAssignment) (ps.ShardAssignment, error) {
	if c.ShardHi > 0 {
		for _, a := range layout {
			if a.ShardLo == c.ShardLo && a.ShardHi == c.ShardHi {
				return a, nil
			}
		}
		var ranges []string
		for _, a := range layout {
			ranges = append(ranges, fmt.Sprintf("%d:%d", a.ShardLo, a.ShardHi))
		}
		return ps.ShardAssignment{}, fmt.Errorf(
			"dssp: shard range %d:%d is not one of the group layout's assignments (%s)",
			c.ShardLo, c.ShardHi, strings.Join(ranges, ", "))
	}
	return layout[c.Index], nil
}

// serveCluster is Serve's server-group path: it builds the role-appropriate
// policy and store, starts the ps.Server, and runs the role's background
// protocol (announce stream, replication) until Stop.
func serveCluster(cfg ServerConfig) (*Server, error) {
	if err := cfg.Cluster.validate(); err != nil {
		return nil, err
	}
	cfg2 := TrainConfig{Model: cfg.Model, Dataset: cfg.Dataset, Workers: cfg.Workers,
		Sync: cfg.Sync, LearningRate: cfg.LearningRate, Seed: cfg.Seed}.withDefaults()
	if cfg2.Workers <= 0 {
		return nil, fmt.Errorf("dssp: server needs a positive worker count")
	}
	spec, err := cfg2.modelSpec()
	if err != nil {
		return nil, err
	}
	initial := spec.Build(rand.New(rand.NewSource(cfg2.Seed)))
	sizes := make([]int, len(initial.Params()))
	for i, p := range initial.Params() {
		sizes[i] = p.Size()
	}
	layout, globalShards, err := ps.GroupLayout(sizes, cfg.Cluster.GlobalShards, cfg.Cluster.Servers)
	if err != nil {
		return nil, err
	}

	var store *ps.Store
	var policy core.Policy
	var clusterCfg ps.ClusterConfig
	opts := cfg.Options.serverOptions()
	var assigned ps.ShardAssignment
	switch cfg.Cluster.Role {
	case RoleCoordinator:
		if cfg.Guard.Enabled {
			return nil, fmt.Errorf("dssp: the anomaly guard screens gradient bytes and runs on data servers; disable it on the coordinator")
		}
		if err := cfg2.Sync.Validate(cfg2.Workers); err != nil {
			return nil, err
		}
		policyCfg := cfg2.Sync.policyConfig()
		policyCfg.Workers = cfg2.Workers
		if policy, err = core.NewPolicy(policyCfg); err != nil {
			return nil, err
		}
		// The coordinator's store is a placeholder clock: one scalar, so the
		// version bookkeeping the paradigm gates on exists without carrying
		// any weights.
		if store, err = ps.NewStoreSharded([]*tensor.Tensor{tensor.New(1)}, optimizer.NewSGD(1), 1); err != nil {
			return nil, err
		}
		clusterCfg = ps.ClusterConfig{Coordinator: true, GlobalShards: globalShards, TotalTensors: len(sizes)}
		// Checkpointing a placeholder store would persist nothing useful.
		opts.Checkpoint = ps.CheckpointConfig{}
	case RoleData, RoleBackup:
		if assigned, err = cfg.Cluster.assignment(layout); err != nil {
			return nil, err
		}
		// Fragment OKs mean "applied locally": a local ASP policy releases
		// every push immediately, the real paradigm runs at the coordinator.
		policy = core.MustNewASP(cfg2.Workers)
		store, err = ps.NewStoreRange(initial.Params(),
			optimizer.NewSGDMomentum(cfg2.LearningRate, cfg.Momentum, cfg.WeightDecay),
			globalShards, assigned.ShardLo, assigned.ShardHi)
		if err != nil {
			return nil, err
		}
	}

	restored := false
	if cfg.Checkpoint.Dir != "" && cfg.Cluster.Role != RoleCoordinator && ps.CheckpointExists(cfg.Checkpoint.Dir) {
		if err := store.RestoreCheckpointDir(cfg.Checkpoint.Dir); err != nil {
			return nil, fmt.Errorf("dssp: restore checkpoint: %w", err)
		}
		restored = true
	}
	reg := obs.NewRegistry()
	inner, err := ps.NewServer(ps.ServerConfig{
		Workers:          cfg2.Workers,
		Policy:           policy,
		Store:            store,
		Options:          opts,
		DisableDeltaPull: cfg.DisableDeltaPull,
		Metrics:          reg,
		Trace:            obs.TraceConfig{Every: cfg.TraceEvery},
		Cluster:          clusterCfg,
	})
	if err != nil {
		return nil, err
	}
	listener, err := transport.ListenWireMetered(cfg.Addr, transport.WireFormat(cfg.Wire), transport.NewMetrics(reg))
	if err != nil {
		return nil, err
	}
	var admin *obs.AdminServer
	if cfg.MetricsAddr != "" {
		admin, err = obs.ServeAdmin(cfg.MetricsAddr, reg,
			func() any { return inner.Status() }, inner.Traces)
		if err != nil {
			_ = listener.Close()
			return nil, fmt.Errorf("dssp: metrics listener: %w", err)
		}
	}
	go func() { _ = inner.Serve(listener) }()

	s := &Server{
		inner:    inner,
		listener: listener,
		store:    store,
		spec:     spec,
		cfg:      cfg2,
		restored: restored,
		admin:    admin,
		role:     cfg.Cluster.Role,
		wire:     cfg.Wire,
		failed:   make(chan struct{}),
		stopping: make(chan struct{}),
	}
	advertise := cfg.Cluster.Advertise
	if advertise == "" {
		advertise = listener.Addr()
	}
	switch cfg.Cluster.Role {
	case RoleData:
		s.bg.Add(1)
		go s.announceLoop(cfg.Cluster, assigned.Entry(advertise), false)
	case RoleBackup:
		s.bg.Add(2)
		go s.announceLoop(cfg.Cluster, assigned.Entry(advertise), true)
		go s.replicateLoop(cfg.Cluster, assigned.Entry(advertise))
	}
	return s, nil
}

// clusterDial opens one wire connection for the server's background cluster
// protocol.
func (s *Server) clusterDial(addr string) (transport.Conn, error) {
	return transport.DialWire(addr, transport.WireFormat(s.wire))
}

// fail records a fatal cluster condition and closes the Failed channel.
func (s *Server) fail(err error) {
	s.failOnce.Do(func() {
		s.failErr = err
		close(s.failed)
	})
}

// stoppingNow reports whether Stop has begun (failures during shutdown are
// the shutdown, not a fault).
func (s *Server) stoppingNow() bool {
	select {
	case <-s.stopping:
		return true
	default:
		return false
	}
}

// announceLoop registers this server's map entry with the coordinator and
// then holds the connection open as a liveness channel. Losing the
// coordinator is fatal by design — it is the single serialization point for
// staleness decisions, and this server cannot make progress decisions
// without it (DESIGN.md §10) — so the loop fails the server fast
// instead of retrying forever.
func (s *Server) announceLoop(cluster ClusterOptions, entry transport.ServerEntry, replica bool) {
	defer s.bg.Done()
	// The initial announce retries with backoff: the coordinator may simply
	// not be up yet when an orchestrator starts the whole group at once. Once
	// an announce has succeeded the coordinator was provably up, so any later
	// connection loss means it died — fatal immediately, no backoff.
	deadline := time.Now().Add(30 * time.Second)
	backoff := 50 * time.Millisecond
	for {
		err := s.announceOnce(cluster.Coordinator, transport.MsgServerAnnounce, entry, replica)
		if err == nil {
			return // announceOnce blocked until connection loss after Stop began
		}
		if s.stoppingNow() {
			return
		}
		_, fatal := err.(*ps.RemoteError)
		if fatal || s.announced.Load() || time.Now().After(deadline) {
			s.fail(fmt.Errorf("dssp: %s server lost the coordinator at %s: %w", s.role, cluster.Coordinator, err))
			return
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// announceOnce performs one announce exchange and then parks on the
// connection. It returns nil only when the connection died after Stop began;
// any earlier death comes back as the error.
func (s *Server) announceOnce(coordAddr string, typ transport.MessageType, entry transport.ServerEntry, replica bool) error {
	conn, err := s.clusterDial(coordAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Tie the connection to Stop so shutdown unblocks the Recv below.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.stopping:
			_ = conn.Close()
		case <-done:
		}
	}()
	if err := conn.Send(transport.Message{Type: typ, Servers: []transport.ServerEntry{entry}, Replica: replica}); err != nil {
		return err
	}
	msg, err := conn.Recv()
	if err != nil {
		return err
	}
	if msg.Type == transport.MsgError {
		return &ps.RemoteError{Msg: msg.Error}
	}
	if msg.Type != transport.MsgOK {
		return fmt.Errorf("unexpected %v reply to announce", msg.Type)
	}
	s.announced.Store(true)
	// Announced. Park until the coordinator (or Stop) closes the connection.
	for {
		if _, err := conn.Recv(); err != nil {
			if s.stoppingNow() {
				return nil
			}
			return err
		}
	}
}

// replicateLoop is the backup role's replication driver: it streams the
// primary's weights into the standby store and, when the primary stays dead
// past the grace, asks the coordinator to promote this server's address into
// the map. After promotion the backup IS the shard owner — its ps.Server has
// been serving the (now current) store all along.
func (s *Server) replicateLoop(cluster ClusterOptions, entry transport.ServerEntry) {
	defer s.bg.Done()
	err := ps.RunReplicator(ps.ReplicatorConfig{
		Dial:     func() (transport.Conn, error) { return s.clusterDial(cluster.Primary) },
		Store:    s.store,
		Interval: cluster.ReplicateEvery,
		Grace:    cluster.ReplicateGrace,
		Metrics:  s.inner.Registry(),
	}, s.stopping)
	if err == nil {
		return // Stop
	}
	if err != ps.ErrPrimaryDead {
		s.fail(fmt.Errorf("dssp: backup replication: %w", err))
		return
	}
	conn, err := s.clusterDial(cluster.Coordinator)
	if err != nil {
		s.fail(fmt.Errorf("dssp: backup cannot reach the coordinator to request promotion: %w", err))
		return
	}
	defer conn.Close()
	if err := conn.Send(transport.Message{Type: transport.MsgPromote, Servers: []transport.ServerEntry{entry}}); err != nil {
		s.fail(fmt.Errorf("dssp: promotion request: %w", err))
		return
	}
	msg, err := conn.Recv()
	if err != nil {
		s.fail(fmt.Errorf("dssp: promotion request: %w", err))
		return
	}
	if msg.Type != transport.MsgOK {
		s.fail(fmt.Errorf("dssp: promotion rejected: %s", msg.Error))
		return
	}
	s.promoted.Store(true)
}

// Failed returns a channel closed when a fatal cluster condition ended this
// server's usefulness — a data server or backup losing its coordinator, or a
// backup unable to complete promotion. Standalone servers never close it.
// FailureErr reports the cause after it closes.
func (s *Server) Failed() <-chan struct{} { return s.failed }

// FailureErr returns the error that closed Failed, or nil.
func (s *Server) FailureErr() error {
	select {
	case <-s.failed:
		return s.failErr
	default:
		return nil
	}
}

// Role returns the server's cluster role ("" for standalone).
func (s *Server) Role() string { return s.role }

// Promoted reports whether this backup completed promotion to shard owner.
func (s *Server) Promoted() bool { return s.promoted.Load() }

// ClusterMap returns a coordinator's current map entries and map version
// (nil, 0 on every other role).
func (s *Server) ClusterMap() ([]transport.ServerEntry, int64) { return s.inner.ClusterMap() }

// clusterSnapshot assembles the group's full weight vector by reading every
// data server through a read-only replica session — registration-free as far
// as the paradigm is concerned, so evaluation never perturbs synchronization.
// Returns the assembled tensors and the minimum data-server version.
func clusterSnapshot(dial func(string) (transport.Conn, error), coordAddr string) ([]*tensor.Tensor, int64, error) {
	m, err := ps.FetchClusterMap(dial, coordAddr)
	if err != nil {
		return nil, 0, err
	}
	if len(m.Servers) == 0 {
		return nil, 0, fmt.Errorf("dssp: cluster map is empty")
	}
	out := make([]*tensor.Tensor, m.Total)
	version := int64(-1)
	for _, e := range m.Servers {
		conn, err := dial(e.Addr)
		if err != nil {
			return nil, 0, fmt.Errorf("dssp: snapshot dial %s: %w", e.Addr, err)
		}
		// Codec auto so the snapshot reads compressed groups too.
		client, err := ps.NewClientCompressed(conn, 0, compress.Config{Codec: compress.Auto})
		if err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("dssp: snapshot client at %s: %w", e.Addr, err)
		}
		client.SetReplica(true)
		if err := client.Register(); err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("dssp: snapshot register at %s: %w", e.Addr, err)
		}
		params, v, err := client.Pull()
		client.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("dssp: snapshot pull from %s: %w", e.Addr, err)
		}
		if e.TensorHi > len(out) || len(params) != e.TensorHi-e.TensorLo {
			return nil, 0, fmt.Errorf("dssp: snapshot from %s carries %d tensors for range [%d, %d)",
				e.Addr, len(params), e.TensorLo, e.TensorHi)
		}
		copy(out[e.TensorLo:e.TensorHi], params)
		if version < 0 || v < version {
			version = v
		}
	}
	for i, p := range out {
		if p == nil {
			return nil, 0, fmt.Errorf("dssp: cluster map covers no owner for tensor %d", i)
		}
	}
	return out, version, nil
}

// runClusterWorker is RunWorker's server-group path: the same training loop,
// but pulls and pushes route through a ClusterClient — gradient fragments to
// each shard owner, the synchronization push to the coordinator.
func runClusterWorker(cfg WorkerConfig, base TrainConfig, spec nn.ModelSpec,
	iterate func(replica *nn.Network) (grads []*tensor.Tensor, loss float64),
	totalIters int, ccfg ps.ClusterClientConfig, meter *transport.Metrics) (*WorkerReport, error) {

	dial := func(addr string) (transport.Conn, error) {
		return transport.DialWireMetered(addr, transport.WireFormat(cfg.Wire), meter)
	}
	client, err := ps.NewClusterClient(dial, cfg.ServerAddr, cfg.WorkerID, ccfg)
	if err != nil {
		return nil, fmt.Errorf("dssp: worker %d connect: %w", cfg.WorkerID, err)
	}
	defer client.Close()
	if cfg.HeartbeatInterval > 0 {
		stop := client.StartHeartbeats(cfg.HeartbeatInterval)
		defer stop()
	}

	replica := spec.Build(rand.New(rand.NewSource(base.Seed)))
	report := &WorkerReport{}
	start := time.Now()
	for it := 0; it < totalIters; it++ {
		if cfg.FailAfter > 0 && it == cfg.FailAfter-1 {
			report.Crashed = true
			report.Iterations = it
			report.Duration = time.Since(start)
			return report, nil
		}
		params, version, err := client.Pull()
		if err != nil {
			return nil, fmt.Errorf("dssp: worker %d pull: %w", cfg.WorkerID, err)
		}
		if err := replica.SetParams(params); err != nil {
			return nil, err
		}
		grads, loss := iterate(replica)
		report.FinalLoss = loss
		if err := client.PushAndWait(grads, version, it); err != nil {
			return nil, fmt.Errorf("dssp: worker %d push: %w", cfg.WorkerID, err)
		}
	}
	if err := client.Done(); err != nil {
		return nil, fmt.Errorf("dssp: worker %d done: %w", cfg.WorkerID, err)
	}
	report.Iterations = totalIters
	report.Duration = time.Since(start)
	report.PushedBytes, report.PulledBytes = client.Traffic()
	report.Codec = client.Codec()
	return report, nil
}
