module dssp

go 1.24
