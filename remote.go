package dssp

import (
	"fmt"
	"math/rand"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/optimizer"
	"dssp/internal/ps"
	"dssp/internal/transport"
)

// ServerConfig configures a stand-alone parameter server reachable over TCP
// (used by cmd/psserver). Workers built with RunWorker connect to it.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. ":7070".
	Addr string
	// Workers is the number of workers expected to join.
	Workers int
	// Sync selects the synchronization paradigm.
	Sync Sync
	// Model and Dataset must match the workers' configuration; the server
	// builds the initial global weights from them.
	Model   Model
	Dataset DatasetConfig
	// LearningRate, Momentum and WeightDecay configure the server-side SGD.
	LearningRate float64
	Momentum     float64
	WeightDecay  float64
	// Shards is the number of independently locked parameter-store
	// partitions (0 = one per CPU); pulls stream one wire chunk per shard.
	Shards int
	// Compression selects the gradient codec this server speaks; workers
	// must register with a matching configuration (or CompressAuto) or are
	// rejected at registration.
	Compression Compression
	// Seed determines the initial weights; it must match the workers' seed.
	Seed int64
}

// Server is a running TCP parameter server.
type Server struct {
	inner    *ps.Server
	listener transport.Listener
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.listener.Addr() }

// Done returns a channel closed once every expected worker reported
// completion.
func (s *Server) Done() <-chan struct{} { return s.inner.AllWorkersDone() }

// Stop shuts the server down.
func (s *Server) Stop() {
	s.inner.Stop()
	_ = s.listener.Close()
}

// Updates returns the number of gradient updates applied so far.
func (s *Server) Updates() int { return s.inner.Pushes() }

// Serve starts a parameter server listening on cfg.Addr and returns
// immediately; the server runs until Stop is called or all workers finish.
func Serve(cfg ServerConfig) (*Server, error) {
	cfg2 := TrainConfig{Model: cfg.Model, Dataset: cfg.Dataset, Workers: cfg.Workers,
		Sync: cfg.Sync, LearningRate: cfg.LearningRate, Seed: cfg.Seed}.withDefaults()
	if cfg2.Workers <= 0 {
		return nil, fmt.Errorf("dssp: server needs a positive worker count")
	}
	spec, err := cfg2.modelSpec()
	if err != nil {
		return nil, err
	}
	if err := cfg2.Sync.Validate(cfg2.Workers); err != nil {
		return nil, err
	}
	policyCfg := cfg2.Sync.policyConfig()
	policyCfg.Workers = cfg2.Workers
	policy, err := core.NewPolicy(policyCfg)
	if err != nil {
		return nil, err
	}
	initial := spec.Build(rand.New(rand.NewSource(cfg2.Seed)))
	store, err := ps.NewStoreSharded(initial.Params(),
		optimizer.NewSGDMomentum(cfg2.LearningRate, cfg.Momentum, cfg.WeightDecay), cfg.Shards)
	if err != nil {
		return nil, err
	}
	server, err := ps.NewServer(ps.ServerConfig{
		Workers:     cfg2.Workers,
		Policy:      policy,
		Store:       store,
		Compression: cfg.Compression.internal(),
	})
	if err != nil {
		return nil, err
	}
	listener, err := transport.Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = server.Serve(listener) }()
	return &Server{inner: server, listener: listener}, nil
}

// WorkerConfig configures one TCP worker process (used by cmd/psworker).
type WorkerConfig struct {
	// ServerAddr is the parameter server's address.
	ServerAddr string
	// WorkerID is this worker's index in [0, Workers).
	WorkerID int
	// Workers is the total number of workers (determines the data shard).
	Workers int
	// Model, Dataset, BatchSize, Epochs and Seed must match the server and
	// the other workers.
	Model     Model
	Dataset   DatasetConfig
	BatchSize int
	Epochs    int
	Seed      int64
	// Delay adds an artificial per-iteration delay to emulate a slower GPU.
	Delay time.Duration
	// Compression selects the gradient codec. The zero value (empty Codec)
	// adopts whatever the server speaks; an explicit codec must match the
	// server's exactly or registration fails.
	Compression Compression
	// Shards, when positive, is the parameter-store shard count this worker
	// expects the server to run with; a mismatch aborts at registration.
	// Zero accepts any layout (the server streams it per pull anyway).
	Shards int
}

// WorkerReport summarizes one worker's run.
type WorkerReport struct {
	// Iterations is the number of mini-batches processed.
	Iterations int
	// FinalLoss is the loss of the last mini-batch.
	FinalLoss float64
	// Duration is the wall-clock time spent training.
	Duration time.Duration
	// Codec is the negotiated gradient codec (useful when Compression was
	// left on auto).
	Codec string
	// PushedBytes and PulledBytes approximate this worker's wire traffic.
	PushedBytes int64
	PulledBytes int64
}

// RunWorker connects to a parameter server over TCP and runs the worker side
// of Algorithm 1 until the configured number of epochs completes.
func RunWorker(cfg WorkerConfig) (*WorkerReport, error) {
	base := TrainConfig{Model: cfg.Model, Dataset: cfg.Dataset, Workers: cfg.Workers,
		BatchSize: cfg.BatchSize, Epochs: cfg.Epochs, Seed: cfg.Seed}.withDefaults()
	if cfg.WorkerID < 0 || cfg.WorkerID >= base.Workers {
		return nil, fmt.Errorf("dssp: worker id %d out of range [0,%d)", cfg.WorkerID, base.Workers)
	}
	spec, err := base.modelSpec()
	if err != nil {
		return nil, err
	}
	train, _, err := base.buildDatasets()
	if err != nil {
		return nil, err
	}
	shard, err := data.PartitionDataset(train, cfg.WorkerID, base.Workers)
	if err != nil {
		return nil, err
	}
	iter, err := data.NewBatchIterator(shard, base.BatchSize, base.Seed+int64(cfg.WorkerID)*1009)
	if err != nil {
		return nil, err
	}

	ccfg := cfg.Compression.internal()
	if cfg.Compression.Codec == "" {
		// Unset means "follow the server" for workers: a fleet started with
		// default flags keeps working when the server turns compression on.
		ccfg.Codec = compress.Auto
	}

	conn, err := transport.Dial(cfg.ServerAddr)
	if err != nil {
		return nil, err
	}
	client, err := ps.NewClientCompressed(conn, cfg.WorkerID, ccfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	defer client.Close()
	if err := client.Register(); err != nil {
		return nil, err
	}
	if cfg.Shards > 0 && client.ServerShards() != cfg.Shards {
		return nil, fmt.Errorf("dssp: worker %d expects %d parameter-store shards, server runs %d",
			cfg.WorkerID, cfg.Shards, client.ServerShards())
	}

	replica := spec.Build(rand.New(rand.NewSource(base.Seed)))
	itersPerEpoch := (shard.Len() + base.BatchSize - 1) / base.BatchSize
	totalIters := itersPerEpoch * base.Epochs

	start := time.Now()
	lastLoss := 0.0
	for it := 0; it < totalIters; it++ {
		params, version, err := client.Pull()
		if err != nil {
			return nil, err
		}
		if err := replica.SetParams(params); err != nil {
			return nil, err
		}
		x, labels := iter.Next()
		replica.ZeroGrads()
		lastLoss, _ = replica.Loss(x, labels, true)
		replica.Backward()
		if cfg.Delay > 0 {
			time.Sleep(cfg.Delay)
		}
		if err := client.PushAndWait(replica.CloneGrads(), version, it); err != nil {
			return nil, err
		}
	}
	if err := client.Done(); err != nil {
		return nil, err
	}
	pushed, pulled := client.Traffic()
	return &WorkerReport{
		Iterations:  totalIters,
		FinalLoss:   lastLoss,
		Duration:    time.Since(start),
		Codec:       client.Compression().Codec,
		PushedBytes: pushed,
		PulledBytes: pulled,
	}, nil
}
