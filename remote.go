package dssp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dssp/internal/compress"
	"dssp/internal/core"
	"dssp/internal/data"
	"dssp/internal/nn"
	"dssp/internal/obs"
	"dssp/internal/optimizer"
	"dssp/internal/ps"
	"dssp/internal/tensor"
	"dssp/internal/transport"
)

// Wire format names accepted by ServerConfig.Wire and WorkerConfig.Wire
// (the -wire flag on cmd/psserver and cmd/psworker). Both ends of a
// connection must speak the same format; a mismatch fails fast at
// registration with an explicit error instead of hanging either side.
const (
	// WireBinary is the versioned zero-copy binary frame protocol
	// (docs/PROTOCOL.md) — the default.
	WireBinary = string(transport.WireBinary)
	// WireGob is the legacy gob encoding, kept as an escape hatch and for
	// A/B benchmarking against the binary protocol.
	WireGob = string(transport.WireGob)
)

// ServerConfig configures a stand-alone parameter server reachable over TCP
// (used by cmd/psserver). Workers built with RunWorker connect to it.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. ":7070".
	Addr string
	// Wire selects the TCP wire format, WireBinary or WireGob; empty means
	// WireBinary. Workers must be configured to match.
	Wire string
	// Workers is the number of workers expected to join.
	Workers int
	// Sync selects the synchronization paradigm.
	Sync Sync
	// Model and Dataset must match the workers' configuration; the server
	// builds the initial global weights from them.
	Model   Model
	Dataset DatasetConfig
	// LearningRate, Momentum and WeightDecay configure the server-side SGD.
	LearningRate float64
	Momentum     float64
	WeightDecay  float64
	// Options is the shared serving surface (sharding, compression,
	// aggregation, guard, elasticity, heartbeat timeout, checkpointing);
	// its fields are embedded and read as they always did
	// (cfg.Compression, cfg.Elastic, ...). DeltaPull and HeartbeatInterval
	// are worker-side knobs and ignored here.
	Options
	// DisableDeltaPull refuses workers' requests for version-gated delta
	// pulls (the default grants them), forcing full weight chunks on every
	// pull — an A/B and debugging knob.
	DisableDeltaPull bool
	// MetricsAddr, when non-empty, starts an admin HTTP listener on that
	// address serving Prometheus metrics (/metrics), liveness (/healthz), a
	// JSON status snapshot with optional push traces (/statusz?traces=1)
	// and pprof (/debug/pprof/). "127.0.0.1:0" picks a free port — read it
	// back with Server.MetricsAddr.
	MetricsAddr string
	// TraceEvery samples one in every TraceEvery pushes for lifecycle
	// tracing; 0 keeps the default (ps.DefaultTraceEvery), negative
	// disables tracing.
	TraceEvery int
	// Seed determines the initial weights; it must match the workers' seed.
	Seed int64
	// Cluster places this server in a multi-server group (DESIGN.md
	// §10): a coordinator that owns the paradigm policy, data servers that
	// own shard ranges, or a backup standing by for one data server. The
	// zero value is a classic standalone server.
	Cluster ClusterOptions
}

// Server is a running TCP parameter server.
type Server struct {
	inner    *ps.Server
	listener transport.Listener
	store    *ps.Store
	spec     nn.ModelSpec
	cfg      TrainConfig
	restored bool
	admin    *obs.AdminServer

	// Cluster state (zero/idle on standalone servers).
	role      string
	wire      string
	failed    chan struct{}
	failOnce  sync.Once
	failErr   error
	stopping  chan struct{}
	stopOnce  sync.Once
	bg        sync.WaitGroup
	promoted  atomic.Bool
	announced atomic.Bool
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.listener.Addr() }

// Done returns a channel closed once training is complete: every worker
// reported completion, or — on an elastic server — every live worker did.
func (s *Server) Done() <-chan struct{} { return s.inner.AllWorkersDone() }

// Stop shuts the server down, writing a final checkpoint when configured.
// The listener closes first so reconnecting workers dial the successor
// server rather than this dying one. On cluster roles it also stops the
// background protocol loops (announce stream, replication) and waits for
// them to exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopping) })
	_ = s.listener.Close()
	s.inner.Stop()
	s.bg.Wait()
	_ = s.admin.Close()
}

// MetricsAddr returns the admin HTTP listener's address, or "" when
// ServerConfig.MetricsAddr was unset.
func (s *Server) MetricsAddr() string { return s.admin.Addr() }

// Registry returns the server's observability registry (always present;
// scraping it does not require the admin listener).
func (s *Server) Registry() *obs.Registry { return s.inner.Registry() }

// Status snapshots the server's live state — the same payload /statusz
// serves.
func (s *Server) Status() ps.ServerStatus { return s.inner.Status() }

// Traces returns the sampled push-lifecycle traces collected so far, oldest
// first (nil when tracing is disabled).
func (s *Server) Traces() []obs.PushTrace { return s.inner.Traces() }

// Updates returns the number of gradient updates applied so far.
func (s *Server) Updates() int { return s.inner.Pushes() }

// Dropped returns the number of pushed updates the policy discarded — the
// backup-worker baseline's defining metric (0 elsewhere).
func (s *Server) Dropped() int { return s.inner.Dropped() }

// Rejoins returns the number of worker rejoins accepted so far.
func (s *Server) Rejoins() int { return s.inner.Rejoins() }

// Departures returns the number of worker sessions deregistered so far —
// crashes, graceful leaves and lease evictions combined.
func (s *Server) Departures() int { return s.inner.Departures() }

// Version returns the parameter-store version (applied updates, including
// any restored from a checkpoint).
func (s *Server) Version() int64 { return s.store.Version() }

// Restored reports whether Serve resumed from an existing checkpoint.
func (s *Server) Restored() bool { return s.restored }

// CheckpointError returns the most recent checkpoint write failure, if any.
func (s *Server) CheckpointError() error { return s.inner.CheckpointError() }

// Evaluate measures the current global model's accuracy on the held-out
// split of the configured dataset. It snapshots the store without stopping
// training, so it may be called mid-run. On a cluster coordinator it
// assembles the full weight vector from the data servers through read-only
// replica sessions; data and backup servers hold only their shard range and
// cannot evaluate.
func (s *Server) Evaluate() (float64, error) {
	_, test, err := s.cfg.buildDatasets()
	if err != nil {
		return 0, err
	}
	model := s.spec.Build(rand.New(rand.NewSource(s.cfg.Seed)))
	var params []*tensor.Tensor
	switch s.role {
	case "":
		params, _ = s.store.Snapshot()
	case RoleCoordinator:
		if params, _, err = clusterSnapshot(s.clusterDial, s.listener.Addr()); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("dssp: a %s server holds only its shard range; evaluate via the coordinator", s.role)
	}
	if err := model.SetParams(params); err != nil {
		return 0, err
	}
	x, labels := test.All()
	return model.Accuracy(x, labels), nil
}

// Serve starts a parameter server listening on cfg.Addr and returns
// immediately; the server runs until Stop is called or all workers finish.
// With cfg.Cluster.Role set it starts the corresponding member of a server
// group instead (DESIGN.md §10).
func Serve(cfg ServerConfig) (*Server, error) {
	if cfg.Cluster.Role != "" {
		return serveCluster(cfg)
	}
	cfg2 := TrainConfig{Model: cfg.Model, Dataset: cfg.Dataset, Workers: cfg.Workers,
		Sync: cfg.Sync, LearningRate: cfg.LearningRate, Seed: cfg.Seed}.withDefaults()
	if cfg2.Workers <= 0 {
		return nil, fmt.Errorf("dssp: server needs a positive worker count")
	}
	spec, err := cfg2.modelSpec()
	if err != nil {
		return nil, err
	}
	if err := cfg2.Sync.Validate(cfg2.Workers); err != nil {
		return nil, err
	}
	policyCfg := cfg2.Sync.policyConfig()
	policyCfg.Workers = cfg2.Workers
	policy, err := core.NewPolicy(policyCfg)
	if err != nil {
		return nil, err
	}
	initial := spec.Build(rand.New(rand.NewSource(cfg2.Seed)))
	store, err := ps.NewStoreSharded(initial.Params(),
		optimizer.NewSGDMomentum(cfg2.LearningRate, cfg.Momentum, cfg.WeightDecay), cfg.Shards)
	if err != nil {
		return nil, err
	}
	restored := false
	if cfg.Checkpoint.Dir != "" && ps.CheckpointExists(cfg.Checkpoint.Dir) {
		if err := store.RestoreCheckpointDir(cfg.Checkpoint.Dir); err != nil {
			return nil, fmt.Errorf("dssp: restore checkpoint: %w", err)
		}
		restored = true
	}
	reg := obs.NewRegistry()
	server, err := ps.NewServer(ps.ServerConfig{
		Workers:          cfg2.Workers,
		Policy:           policy,
		Store:            store,
		Options:          cfg.Options.serverOptions(),
		DisableDeltaPull: cfg.DisableDeltaPull,
		Metrics:          reg,
		Trace:            obs.TraceConfig{Every: cfg.TraceEvery},
	})
	if err != nil {
		return nil, err
	}
	// Every accepted connection meters its frames and bytes into the same
	// registry the server's counters live on.
	listener, err := transport.ListenWireMetered(cfg.Addr, transport.WireFormat(cfg.Wire), transport.NewMetrics(reg))
	if err != nil {
		return nil, err
	}
	var admin *obs.AdminServer
	if cfg.MetricsAddr != "" {
		admin, err = obs.ServeAdmin(cfg.MetricsAddr, reg,
			func() any { return server.Status() }, server.Traces)
		if err != nil {
			_ = listener.Close()
			return nil, fmt.Errorf("dssp: metrics listener: %w", err)
		}
	}
	go func() { _ = server.Serve(listener) }()
	return &Server{
		inner:    server,
		listener: listener,
		store:    store,
		spec:     spec,
		cfg:      cfg2,
		restored: restored,
		admin:    admin,
		wire:     cfg.Wire,
		failed:   make(chan struct{}),
		stopping: make(chan struct{}),
	}, nil
}

// WorkerConfig configures one TCP worker process (used by cmd/psworker).
type WorkerConfig struct {
	// ServerAddr is the parameter server's address. With Cluster set this is
	// the coordinator, from which the worker learns the cluster map.
	ServerAddr string
	// Cluster makes the worker join a server group: it registers with the
	// coordinator at ServerAddr, fetches the cluster map, and routes gradient
	// fragments directly to each shard owner while synchronization decisions
	// stay with the coordinator. A dead data link recovers by refetching the
	// map (which is how a backup promotion reaches the worker); a dead
	// coordinator fails the run fast by design.
	Cluster bool
	// Tree makes the worker join through the aggregation tier (DESIGN.md
	// §11): it fetches the tree layout from the root at ServerAddr and dials
	// the relay covering its worker index, falling back to the root when no
	// relay does. Every reconnect attempt re-fetches the layout, which is
	// how a worker orphaned by a dead relay re-parents. Mutually exclusive
	// with Cluster.
	Tree bool
	// Wire selects the TCP wire format, WireBinary or WireGob; empty means
	// WireBinary. It must match the server's.
	Wire string
	// WorkerID is this worker's index in [0, Workers).
	WorkerID int
	// Workers is the total number of workers (determines the data shard).
	Workers int
	// Model, Dataset, BatchSize, Epochs and Seed must match the server and
	// the other workers.
	Model     Model
	Dataset   DatasetConfig
	BatchSize int
	Epochs    int
	Seed      int64
	// Delay adds an artificial per-iteration delay to emulate a slower GPU.
	Delay time.Duration
	// Options is the shared serving surface. For a worker the acting fields
	// are Compression (the zero value adopts whatever the server speaks; an
	// explicit codec must match the server's exactly), Shards (when
	// positive, the store layout this worker expects — a mismatch aborts at
	// registration; zero accepts any), DeltaPull (request version-gated
	// delta pulls; ungranting servers keep pulls full) and
	// HeartbeatInterval. The server-side fields are ignored here.
	Options
	// Adversary, when not 0 or 1, makes this worker Byzantine for robustness
	// experiments: every pushed gradient is scaled by this factor (e.g. -10
	// for scaled ascent). An adversarial worker losing its connection is
	// reported as Crashed — the expected fate under a guarded server — not
	// as an error.
	Adversary float64
	// Reconnect makes the worker ride through connection failures: on any
	// transport error it redials the server (with backoff, for up to
	// ReconnectTimeout), rejoins carrying the last store version it saw, and
	// retries the interrupted iteration from a fresh pull. This is what lets
	// a worker survive a parameter-server restart.
	Reconnect bool
	// ReconnectTimeout bounds each reconnection attempt sequence; 0 means
	// the default 30s.
	ReconnectTimeout time.Duration
	// FailAfter > 0 injects a fault for demos and tests: the worker drops
	// its connection abruptly — no Done, no Leave, like a process kill —
	// before starting iteration FailAfter, and RunWorker returns a report
	// with Crashed set.
	FailAfter int
	// MetricsAddr, when non-empty, starts an admin HTTP listener serving
	// this worker's metrics (/metrics: pull/push latency, iteration count,
	// transport traffic), /healthz and pprof. "127.0.0.1:0" picks a free
	// port.
	MetricsAddr string
	// OnAdminAddr, when set alongside MetricsAddr, is called once with the
	// admin listener's bound address — the way to learn the port when
	// MetricsAddr asked for ":0".
	OnAdminAddr func(addr string)
}

// WorkerReport summarizes one worker's run.
type WorkerReport struct {
	// Iterations is the number of mini-batches processed.
	Iterations int
	// FinalLoss is the loss of the last mini-batch.
	FinalLoss float64
	// Duration is the wall-clock time spent training.
	Duration time.Duration
	// Codec is the negotiated gradient codec (useful when Compression was
	// left on auto).
	Codec string
	// PushedBytes and PulledBytes approximate this worker's wire traffic.
	PushedBytes int64
	PulledBytes int64
	// Reconnects is how many times the worker redialed and rejoined after
	// losing its connection.
	Reconnects int
	// Crashed reports that the run ended through FailAfter fault injection.
	Crashed bool
}

// workerLink is one live connection to the server: the client plus the
// heartbeat stopper tied to its lifetime.
type workerLink struct {
	client *ps.Client
	stopHB func()
}

// close tears the link down without deregistering (an abrupt close is how a
// crash looks to the server; a graceful end sends Done first).
func (l *workerLink) close() {
	l.stopHB()
	_ = l.client.Close()
}

// RunWorker connects to a parameter server over TCP and runs the worker side
// of Algorithm 1 until the configured number of epochs completes. With
// Reconnect set it survives server restarts and transient network failures
// by redialing and rejoining mid-run.
func RunWorker(cfg WorkerConfig) (*WorkerReport, error) {
	base := TrainConfig{Model: cfg.Model, Dataset: cfg.Dataset, Workers: cfg.Workers,
		BatchSize: cfg.BatchSize, Epochs: cfg.Epochs, Seed: cfg.Seed}.withDefaults()
	if cfg.WorkerID < 0 || cfg.WorkerID >= base.Workers {
		return nil, fmt.Errorf("dssp: worker id %d out of range [0,%d)", cfg.WorkerID, base.Workers)
	}
	if cfg.Tree && cfg.Cluster {
		return nil, fmt.Errorf("dssp: Tree and Cluster are mutually exclusive")
	}
	// Validate the wire format up front: a typo must fail immediately, not
	// spin inside the reconnect backoff loop.
	if _, err := transport.ParseWireFormat(cfg.Wire); err != nil {
		return nil, err
	}
	spec, err := base.modelSpec()
	if err != nil {
		return nil, err
	}
	train, _, err := base.buildDatasets()
	if err != nil {
		return nil, err
	}
	shard, err := data.PartitionDataset(train, cfg.WorkerID, base.Workers)
	if err != nil {
		return nil, err
	}
	iter, err := data.NewBatchIterator(shard, base.BatchSize, base.Seed+int64(cfg.WorkerID)*1009)
	if err != nil {
		return nil, err
	}

	ccfg := cfg.Compression.internal()
	if cfg.Compression.Codec == "" {
		// Unset means "follow the server" for workers: a fleet started with
		// default flags keeps working when the server turns compression on.
		ccfg.Codec = compress.Auto
	}

	// Worker-side observability is opt-in via MetricsAddr: one registry
	// spans reconnects (each new link instruments onto it), so the scraped
	// series survive a server restart.
	var reg *obs.Registry
	var meter *transport.Metrics
	if cfg.MetricsAddr != "" {
		reg = obs.NewRegistry()
		meter = transport.NewMetrics(reg)
		admin, err := obs.ServeAdmin(cfg.MetricsAddr, reg, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("dssp: worker %d metrics listener: %w", cfg.WorkerID, err)
		}
		defer admin.Close()
		if cfg.OnAdminAddr != nil {
			cfg.OnAdminAddr(admin.Addr())
		}
	}

	if cfg.Cluster {
		adversarial := cfg.Adversary != 0 && cfg.Adversary != 1
		iterate := func(replica *nn.Network) ([]*tensor.Tensor, float64) {
			x, labels := iter.Next()
			replica.ZeroGrads()
			loss, _ := replica.Loss(x, labels, true)
			replica.Backward()
			if cfg.Delay > 0 {
				time.Sleep(cfg.Delay)
			}
			grads := replica.CloneGrads()
			if adversarial {
				f := float32(cfg.Adversary)
				for _, g := range grads {
					d := g.Data()
					for i := range d {
						d[i] *= f
					}
				}
			}
			return grads, loss
		}
		itersPerEpoch := (shard.Len() + base.BatchSize - 1) / base.BatchSize
		return runClusterWorker(cfg, base, spec, iterate, itersPerEpoch*base.Epochs,
			ps.ClusterClientConfig{
				Compression:    ccfg,
				DeltaPull:      cfg.DeltaPull,
				RecoverTimeout: cfg.ReconnectTimeout,
			}, meter)
	}

	// resolveAddr picks the endpoint to dial: the server itself, or — in
	// tree mode — the relay the root's current layout assigns this worker.
	// It re-fetches the layout on every call, so a reconnect after a relay
	// death lands on the re-parented topology, not the dead address.
	resolveAddr := func() (string, error) {
		if !cfg.Tree {
			return cfg.ServerAddr, nil
		}
		conn, err := transport.DialWireMetered(cfg.ServerAddr, transport.WireFormat(cfg.Wire), meter)
		if err != nil {
			return "", err
		}
		layout, err := ps.FetchTreeLayout(conn)
		conn.Close()
		if err != nil {
			return "", err
		}
		if addr := layout.Covering(cfg.WorkerID); addr != "" {
			return addr, nil
		}
		return cfg.ServerAddr, nil
	}

	// connect dials, registers (or rejoins) and starts heartbeats.
	connect := func(rejoin bool, lastVersion int64) (*workerLink, error) {
		addr, err := resolveAddr()
		if err != nil {
			return nil, err
		}
		conn, err := transport.DialWireMetered(addr, transport.WireFormat(cfg.Wire), meter)
		if err != nil {
			return nil, err
		}
		client, err := ps.NewClientCompressed(conn, cfg.WorkerID, ccfg)
		if err != nil {
			conn.Close()
			return nil, err
		}
		client.Instrument(reg)
		client.SetDeltaPull(cfg.DeltaPull)
		if rejoin {
			err = client.Rejoin(lastVersion)
		} else {
			err = client.Register()
		}
		if err != nil {
			client.Close()
			return nil, err
		}
		if cfg.Shards > 0 && client.ServerShards() != cfg.Shards {
			client.Close()
			return nil, fmt.Errorf("dssp: worker %d expects %d parameter-store shards, server runs %d",
				cfg.WorkerID, cfg.Shards, client.ServerShards())
		}
		stopHB := func() {}
		if cfg.HeartbeatInterval > 0 {
			stopHB = client.StartHeartbeats(cfg.HeartbeatInterval)
		}
		return &workerLink{client: client, stopHB: stopHB}, nil
	}

	// connectWithBackoff retries connect until ReconnectTimeout. With
	// Reconnect set it also covers the first connection: a worker launched
	// during the very server outage Reconnect exists to survive (a restart
	// window, an orchestrator racing the server up) keeps dialing instead of
	// failing on arrival.
	connectWithBackoff := func(rejoin bool, lastVersion int64, cause error) (*workerLink, error) {
		budget := cfg.ReconnectTimeout
		if budget <= 0 {
			budget = 30 * time.Second
		}
		deadline := time.Now().Add(budget)
		backoff := 100 * time.Millisecond
		for {
			next, err := connect(rejoin, lastVersion)
			if err == nil {
				return next, nil
			}
			if transport.IsWireMismatch(err) {
				// A wire-format or protocol-version mismatch is permanent
				// for this configuration pair: retrying it would spam both
				// sides for the whole backoff budget and then fail anyway.
				return nil, fmt.Errorf("dssp: worker %d: %w", cfg.WorkerID, err)
			}
			if time.Now().After(deadline) {
				if cause != nil {
					return nil, fmt.Errorf("dssp: worker %d gave up reconnecting after %v (last error %v; cause %w)",
						cfg.WorkerID, budget, err, cause)
				}
				return nil, fmt.Errorf("dssp: worker %d gave up connecting after %v: %w", cfg.WorkerID, budget, err)
			}
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}

	report := &WorkerReport{}
	lastVersion := int64(0)

	var link *workerLink
	if cfg.Reconnect {
		link, err = connectWithBackoff(false, 0, nil)
	} else {
		link, err = connect(false, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("dssp: worker %d connect: %w", cfg.WorkerID, err)
	}
	// accountAndClose folds the link's traffic into the report before
	// discarding it, so bytes moved before a reconnect are not lost. The
	// link is nilled so the deferred cleanup never double-counts one that a
	// failed reconnect already retired.
	accountAndClose := func() {
		if link == nil {
			return
		}
		pushed, pulled := link.client.Traffic()
		report.PushedBytes += pushed
		report.PulledBytes += pulled
		report.Codec = link.client.Compression().Codec
		link.close()
		link = nil
	}
	defer func() { accountAndClose() }()

	// reconnect replaces a failed link, redialing with backoff and rejoining
	// with the last seen version.
	reconnect := func(cause error) error {
		if !cfg.Reconnect {
			return cause
		}
		accountAndClose()
		next, err := connectWithBackoff(true, lastVersion, cause)
		if err != nil {
			return err
		}
		link = next
		report.Reconnects++
		return nil
	}

	replica := spec.Build(rand.New(rand.NewSource(base.Seed)))
	itersPerEpoch := (shard.Len() + base.BatchSize - 1) / base.BatchSize
	totalIters := itersPerEpoch * base.Epochs

	start := time.Now()
	lastLoss := 0.0
	adversarial := cfg.Adversary != 0 && cfg.Adversary != 1
	// crashReport finishes the run as a crash at iteration it — fault
	// injection, or an adversarial worker whose connection the server's
	// guard closed for good (its expected fate; not an error).
	crashReport := func(it int) (*WorkerReport, error) {
		report.Crashed = true
		report.Iterations = it
		report.FinalLoss = lastLoss
		report.Duration = time.Since(start)
		return report, nil
	}
	for it := 0; it < totalIters; {
		if cfg.FailAfter > 0 && it == cfg.FailAfter-1 {
			// Injected fault: vanish without a word mid-run.
			return crashReport(it)
		}
		params, version, err := link.client.Pull()
		if err != nil {
			if err = reconnect(err); err != nil {
				if adversarial {
					return crashReport(it)
				}
				return nil, err
			}
			continue
		}
		lastVersion = version
		if err := replica.SetParams(params); err != nil {
			return nil, err
		}
		x, labels := iter.Next()
		replica.ZeroGrads()
		lastLoss, _ = replica.Loss(x, labels, true)
		replica.Backward()
		if cfg.Delay > 0 {
			time.Sleep(cfg.Delay)
		}
		grads := replica.CloneGrads()
		if adversarial {
			// Gradient-scaling poisoning: the clone is this worker's own, so
			// the corruption never reaches the local replica.
			f := float32(cfg.Adversary)
			for _, g := range grads {
				d := g.Data()
				for i := range d {
					d[i] *= f
				}
			}
		}
		if err := link.client.PushAndWait(grads, version, it); err != nil {
			// The push (or the release it waits for) died with the
			// connection; after rejoining, redo the iteration from a fresh
			// pull so the gradient matches the weights it updates.
			if err = reconnect(err); err != nil {
				if adversarial {
					return crashReport(it)
				}
				return nil, err
			}
			continue
		}
		it++
	}
	for {
		if err := link.client.Done(); err == nil {
			break
		} else if err = reconnect(err); err != nil {
			if adversarial {
				return crashReport(totalIters)
			}
			return nil, err
		}
	}
	report.Iterations = totalIters
	report.FinalLoss = lastLoss
	report.Duration = time.Since(start)
	return report, nil
}
